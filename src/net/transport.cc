#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace weaver {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

}  // namespace

std::unique_ptr<SocketTransport> SocketTransport::Adopt(int fd) {
  // A peer that disappears mid-write must surface as an EPIPE error, not
  // kill the process.
  ::signal(SIGPIPE, SIG_IGN);
  return std::unique_ptr<SocketTransport>(new SocketTransport(fd));
}

Result<std::pair<int, int>> SocketTransport::CreateSocketPairFds() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Errno("socketpair");
  }
  return std::make_pair(fds[0], fds[1]);
}

Result<std::pair<std::unique_ptr<SocketTransport>,
                 std::unique_ptr<SocketTransport>>>
SocketTransport::CreatePair() {
  auto fds = CreateSocketPairFds();
  if (!fds.ok()) return fds.status();
  return std::make_pair(Adopt(fds->first), Adopt(fds->second));
}

Result<int> SocketTransport::ListenLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const Status st = Errno("bind/listen");
    ::close(fd);
    return st;
  }
  return fd;
}

Result<std::uint16_t> SocketTransport::ListenPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::AcceptOne(
    int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Adopt(fd);
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::ConnectLoopback(
    std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Adopt(fd);
}

SocketTransport::~SocketTransport() {
  Stop();
  if (receiver_.joinable()) receiver_.join();
  if (writer_.joinable()) writer_.join();
  ::close(fd_);
}

void SocketTransport::WaitWritable() {
  MutexLock lk(send_mu_);
  while (!closed_.load() && !writer_failed_ &&
         send_queue_bytes_ >= kSendQueueHighWater) {
    send_cv_.wait(lk.native());
  }
}

Status SocketTransport::SendBytes(std::string_view bytes, bool never_block) {
  MutexLock lk(send_mu_);
  if (closed_.load() || writer_failed_) {
    return Status::Unavailable("transport is stopped");
  }
  if (!writer_.joinable()) {
    writer_ = std::thread([this] { WriterLoop(); });
  }
  if (!never_block) {
    // Flow control for bulk producers: wait for the writer to drain the
    // backlog below high water. Never-block traffic skips this so event
    // loops (shard hop forwarding, hub routing) cannot wedge on a
    // congested link. (Senders that hold ordering locks of their own use
    // WaitWritable() before locking + never_block here instead.)
    while (!closed_.load() && !writer_failed_ &&
           send_queue_bytes_ >= kSendQueueHighWater) {
      send_cv_.wait(lk.native());
    }
    if (closed_.load() || writer_failed_) {
      return Status::Unavailable("transport is stopped");
    }
  }
  send_queue_.emplace_back(bytes);
  send_queue_bytes_ += bytes.size();
  send_cv_.notify_all();
  return Status::Ok();
}

void SocketTransport::WriterLoop() {
  MutexLock lk(send_mu_);
  while (true) {
    while (!closed_.load() && send_queue_.empty()) {
      send_cv_.wait(lk.native());
    }
    if (send_queue_.empty()) return;  // closed and drained
    std::string frame = std::move(send_queue_.front());
    send_queue_.pop_front();
    send_queue_bytes_ -= frame.size();
    send_cv_.notify_all();  // space freed: wake blocked senders
    lk.Unlock();
    const char* p = frame.data();
    std::size_t left = frame.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        closed_.store(true);
        lk.Lock();
        writer_failed_ = true;
        send_queue_.clear();
        send_queue_bytes_ = 0;
        send_cv_.notify_all();
        return;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    lk.Lock();
  }
}

void SocketTransport::StartReceiver(
    std::function<void(const char* data, std::size_t n)> on_bytes) {
  receiver_ = std::thread([this, on_bytes = std::move(on_bytes)] {
    char buf[64 * 1024];
    while (true) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF (peer closed / shutdown) or error
      on_bytes(buf, static_cast<std::size_t>(n));
    }
    closed_.store(true);
    {
      // The link is dead in both directions: wake the writer thread (so
      // it can exit and be joined) and any sender parked on flow
      // control. Stop() would do the same, but EOF can arrive first and
      // Stop() no-ops once closed_ is set.
      MutexLock lk(send_mu_);
      send_cv_.notify_all();
    }
    on_bytes(nullptr, 0);  // end-of-stream marker
  });
}

void SocketTransport::Stop() {
  if (closed_.exchange(true)) return;
  // Unblocks both the receiver's read() and any peer blocked writing.
  ::shutdown(fd_, SHUT_RDWR);
  // Wake the writer thread and any sender parked on flow control.
  MutexLock lk(send_mu_);
  send_cv_.notify_all();
}

}  // namespace weaver
