// MessageBus: the cluster interconnect.
//
// Weaver's deployment runs gatekeepers and shard servers as separate
// processes connected by TCP; this reproduction runs them as actors that
// exchange messages over this bus. The bus preserves the property the
// protocol depends on (paper §4.2): every (source, destination) pair is a
// reliable FIFO channel with per-channel sequence numbers, so transactions
// from one gatekeeper cannot be lost or reordered in transit. Receivers
// check the sequence numbers and fail loudly on a violation.
//
// Endpoints come in three kinds:
//   * inbox -- a BlockingQueue drained by the owner's event loop (shard
//     servers);
//   * inline handler -- invoked on the sender's thread (gatekeeper
//     announce processing, session reply routing). Handlers may carry a
//     capacity bound on DEFERRED deliveries (delay-queue backlog), so a
//     lagging receiver cannot grow an unbounded queue -- over-capacity
//     sends drop with ResourceExhausted (safe for announces: a later
//     announce supersedes a dropped one);
//   * remote -- a proxy for an endpoint living in another process. Sends
//     are encoded into wire frames (via the deployment-installed wire
//     encoder, core/message_codec.h) and shipped over the endpoint's
//     Transport (net/transport.h); a WireLink on the receiving side
//     rebuilds the message and calls DeliverWire(), which enforces the
//     per-channel sequence numbers across the process boundary. The
//     in-process fast path never encodes anything.
//
// For tests, an optional delivery-delay hook routes messages through a
// timer thread; per-channel FIFO order is still preserved (delays are
// clamped monotonically per channel), modelling a slow but ordered link.
// Delays apply to local endpoints only (a real link supplies its own).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/queue.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace weaver {

/// Opaque endpoint address on the bus.
using EndpointId = std::uint32_t;

struct BusMessage {
  EndpointId src = 0;
  EndpointId dst = 0;
  std::uint64_t channel_seq = 0;  // 1-based, per (src,dst) channel
  std::shared_ptr<void> payload;  // type-erased; receivers know the schema
  std::uint32_t payload_tag = 0;  // discriminator chosen by the sender
};

class MessageBus {
 public:
  struct Stats {
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_delivered{0};
    /// Frames shipped to / received from remote (transport-backed)
    /// endpoints.
    std::atomic<std::uint64_t> wire_frames_sent{0};
    std::atomic<std::uint64_t> wire_frames_received{0};
    /// Wire deliveries rejected because a per-channel sequence number was
    /// missing or out of order (a broken link; receivers fail loudly).
    std::atomic<std::uint64_t> wire_seq_violations{0};
    /// Sends dropped because a bounded handler endpoint's deferred-queue
    /// capacity was exceeded (announce backpressure).
    std::atomic<std::uint64_t> handler_capacity_drops{0};
    /// Payload + frame bytes shipped to / received from remote endpoints
    /// (received bytes are reported by the WireLinks feeding this bus).
    std::atomic<std::uint64_t> wire_bytes_sent{0};
    std::atomic<std::uint64_t> wire_bytes_received{0};
  };

  MessageBus();
  ~MessageBus();
  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Registers an endpoint whose messages accumulate in an inbox that the
  /// owner drains (actor style). Returns the endpoint id.
  EndpointId RegisterInbox(std::string name,
                           std::shared_ptr<BlockingQueue<BusMessage>> inbox);

  /// Registers an endpoint with an inline delivery handler (invoked on the
  /// sender's thread, or the delay thread when delays are active).
  /// `capacity` bounds DEFERRED deliveries only (messages parked in the
  /// delay queue for this endpoint): sends beyond it drop with
  /// ResourceExhausted instead of growing the queue. 0 = unbounded.
  /// Synchronous (no-delay) deliveries never queue, so they are never
  /// dropped.
  EndpointId RegisterHandler(std::string name,
                             std::function<void(const BusMessage&)> handler,
                             std::size_t capacity = 0);

  /// Registers a remote proxy endpoint: sends to it are encoded with the
  /// installed wire encoder and shipped over `transport` as frames.
  /// Several remote endpoints may share one transport (a child process
  /// reaches every parent-side endpoint through its single link).
  EndpointId RegisterRemote(std::string name,
                            std::shared_ptr<Transport> transport);

  /// Installs the PAYLOAD encoder used for sends to remote endpoints
  /// (core/message_codec.h's EncodePayload). The bus wraps the encoded
  /// payload in a wire frame itself -- payload encoding happens (and can
  /// fail) BEFORE the channel sequence number is committed, so an
  /// unencodable message never desyncs the receiver's gap-free FIFO
  /// check. Must be set before the first remote send; not changed while
  /// traffic flows.
  void SetWireEncoder(
      std::function<Result<std::string>(std::uint32_t tag,
                                        const std::shared_ptr<void>& payload)>
          encoder);

  /// Delivery entry point for messages received over a wire link. The
  /// message carries the SENDER-side channel sequence number; this bus
  /// verifies it continues the channel's gap-free FIFO stream and fails
  /// loudly (Internal + stats().wire_seq_violations) on any violation --
  /// a reordered or lost frame means the link broke its contract.
  /// `never_block` bypasses bounded-inbox blocking (program/control
  /// traffic, core/message_codec.h's WireNeverBlock).
  Status DeliverWire(BusMessage msg, bool never_block);

  /// Marks channels touching `id` as idempotent-protocol channels:
  /// DeliverWire accepts the first frame it sees on such a channel as the
  /// sequence baseline (instead of requiring seq 1), and accepts a
  /// restart at seq 1 any time (the peer process was respawned or reset).
  /// Mid-stream gaps and reorders still fail loudly.
  ///
  /// This exists for the timeline-oracle RPC endpoints
  /// (docs/oracle_service.md): during oracle failover the parent hub
  /// drops oracle-bound frames while the endpoint is fenced, which burns
  /// sender sequence numbers the respawned process never sees -- and the
  /// oracle protocol is retried idempotent request/reply, so a lost
  /// frame is safe. Shard-to-shard wave channels must NOT be marked: a
  /// dropped hop is lost work (the supervisor's commit gate prevents
  /// those drops instead).
  void AllowFirstContact(EndpointId id);

  /// Ships an already-encoded frame to a remote endpoint's transport
  /// verbatim (hub routing: a frame between two child processes transits
  /// the parent without being decoded). `never_block` carries the
  /// ForcePush contract onto the outbound link (links must not wedge
  /// forwarding program traffic into a congested peer).
  Status ForwardFrame(EndpointId dst, std::string_view frame,
                      bool never_block = false);

  /// Detaches an endpoint: subsequent sends to it are dropped (simulates a
  /// crashed server). Channel sequence state is preserved so a re-register
  /// with ReattachInbox continues the FIFO stream.
  void Detach(EndpointId id);
  void ReattachInbox(EndpointId id,
                     std::shared_ptr<BlockingQueue<BusMessage>> inbox);

  /// Forgets all wire/channel sequence state touching endpoint `id`, in
  /// both directions: send channels restart at seq 1 and DeliverWire's
  /// receive expectations are cleared. Process recovery uses this after a
  /// peer process died (its counters died with it) and BEFORE the
  /// replacement transport is attached, so the fresh process's stream
  /// starts gap-free. Channels are reset in place (never erased): a
  /// concurrent sender may hold a channel's lock.
  void ResetPeer(EndpointId id);

  /// Swaps the transport behind a remote endpoint and re-attaches it
  /// (the respawned process's link). Call after ResetPeer; no-op with a
  /// loud stderr line for non-remote endpoints.
  void ReplaceRemote(EndpointId id, std::shared_ptr<Transport> transport);

  /// Installs a fallback transport for sends whose destination this bus
  /// has never registered: the message is encoded and shipped over
  /// `transport` exactly like a remote-endpoint send. A child process
  /// uses its parent uplink here so it can address DYNAMIC parent-side
  /// endpoints -- client session reply endpoints, the parent's internal
  /// reply router -- whose ids are allocated after the child's
  /// registration loop ran (docs/transport.md#cluster-bootstrap).
  /// Registered endpoints (including detached ones) are never diverted.
  /// Set during single-threaded setup; nullptr disables.
  void SetDefaultRemote(std::shared_ptr<Transport> transport);

  /// Sends a message. Assigns the per-channel sequence number atomically
  /// with enqueueing, so concurrent senders on one channel stay FIFO.
  /// Returns Unavailable if the destination is detached (delayed
  /// deliveries report Ok and drop on arrival -- the link cannot know).
  ///
  /// `never_block` exempts the message from the destination's inbox
  /// capacity (BlockingQueue::ForcePush): event-loop actors that send to
  /// each other (shard-to-shard node-program hop forwarding) use it so
  /// two full peers cannot deadlock pushing into one another. Bulk
  /// producers (gatekeepers, clients) keep the default blocking
  /// backpressure.
  Status Send(EndpointId src, EndpointId dst, std::uint32_t payload_tag,
              std::shared_ptr<void> payload, bool never_block = false);

  /// Installs a delivery delay (microseconds) computed per message; nullptr
  /// disables delays. Not for use concurrently with traffic. CAVEAT: node
  /// program quiescence accounting (docs/node_programs.md) relies on a
  /// shard's spawn report reaching the coordinator before the spawned
  /// hops' consume reports -- inline delivery guarantees that; delayed
  /// delivery orders only per channel, so deployments running programs
  /// must not install delays (the link-delay tests drive bare endpoints).
  void SetDelayFn(
      std::function<std::uint64_t(EndpointId, EndpointId)> delay_fn);

  const std::string& NameOf(EndpointId id) const;

  /// Depth of an inbox endpoint's queue. For remote endpoints, the depth
  /// last observed via NoteRemoteDepth (a MetricsReport from the owning
  /// process) -- possibly stale, see the staleness contract at the
  /// gatekeeper call site. 0 for handler endpoints and unknown ids.
  std::size_t QueueDepth(EndpointId id) const;

  /// Records the queue depth a remote endpoint's owning process reported
  /// for itself (fed by Weaver::OnMetricsReport). No-op for non-remote
  /// endpoints.
  void NoteRemoteDepth(EndpointId id, std::size_t depth);

  /// Attributes wire bytes received by a WireLink to this bus's stats
  /// (the link owns the receive path; the bus owns the counters).
  void NoteWireBytesReceived(std::uint64_t n) {
    stats_.wire_bytes_received.fetch_add(n, std::memory_order_relaxed);
  }

  /// Exports this bus's counters into `registry` under "bus." names,
  /// including a "bus.<endpoint>.depth" gauge per inbox endpoint
  /// (registered lazily as endpoints appear). The registry must outlive
  /// the bus; the bus drops its names in its destructor.
  void SetMetrics(obs::MetricsRegistry* registry);

  const Stats& stats() const { return stats_; }

 private:
  struct Endpoint {
    std::string name;
    std::shared_ptr<BlockingQueue<BusMessage>> inbox;  // or...
    std::function<void(const BusMessage&)> handler;    // ...inline handler,
    std::shared_ptr<Transport> remote;                 // ...or remote proxy
    bool attached = true;
    /// Handler endpoints only: bound on deferred (delay-queue) deliveries
    /// and the live count of them. The count is atomic because senders
    /// increment it while the delay thread decrements after delivery.
    std::size_t handler_capacity = 0;
    std::shared_ptr<std::atomic<std::size_t>> deferred{
        std::make_shared<std::atomic<std::size_t>>(0)};
    /// Remote endpoints only: last inbox depth the owning process
    /// reported for this endpoint (NoteRemoteDepth).
    std::shared_ptr<std::atomic<std::size_t>> remote_depth;
  };
  struct Channel {
    Mutex mu;
    std::uint64_t next_seq GUARDED_BY(mu) = 1;
    // For FIFO under delays.
    std::uint64_t last_delivery_deadline_us GUARDED_BY(mu) = 0;
  };
  struct Delayed {
    std::uint64_t deliver_at_us;
    std::uint64_t order;  // tie-break, preserves global send order
    BusMessage msg;
    /// Bounded-handler accounting: decremented once the message leaves
    /// the deferred queues (delivered or dropped). Null when unbounded.
    std::shared_ptr<std::atomic<std::size_t>> deferred;
    bool operator>(const Delayed& other) const {
      return std::tie(deliver_at_us, order) >
             std::tie(other.deliver_at_us, other.order);
    }
  };

  /// Returns false when the destination is unknown or detached (the
  /// message is dropped).
  bool Deliver(const BusMessage& msg, bool never_block);
  /// Delay-thread delivery: never blocks on a full bounded inbox.
  /// Returns false when the destination is full -- the caller parks the
  /// message in stalled_ and retries, so one slow shard cannot stall
  /// delayed traffic to every other endpoint.
  bool TryDeliver(BusMessage& msg);
  /// Flushes stalled_ in FIFO order per destination. Delay thread only,
  /// called WITHOUT delay_mu_ (deliveries may run handlers, and handlers
  /// may Send back onto the delayed bus).
  void FlushStalled();
  void DelayLoop();

  /// Registers the per-endpoint depth gauge for `id`. Call WITHOUT
  /// endpoints_mu_ held: the registry lock is taken inside, and
  /// Snapshot() invokes the gauge (which takes endpoints_mu_ via
  /// QueueDepth) while holding the registry lock -- taking them in the
  /// opposite order here would deadlock.
  void ExportEndpointDepth(EndpointId id, const std::string& name);

  mutable Mutex endpoints_mu_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_ GUARDED_BY(endpoints_mu_);

  /// Metrics export (null until SetMetrics). Written during deployment
  /// setup, before concurrent registration traffic.
  obs::MetricsRegistry* metrics_ = nullptr;

  Mutex channels_mu_;
  std::map<std::pair<EndpointId, EndpointId>, std::unique_ptr<Channel>>
      channels_ GUARDED_BY(channels_mu_);

  /// Payload encoder for remote sends (deployment-installed).
  std::function<Result<std::string>(std::uint32_t,
                                    const std::shared_ptr<void>&)>
      wire_encoder_;
  /// Fallback transport for sends to never-registered endpoint ids
  /// (SetDefaultRemote); null in ordinary deployments.
  std::shared_ptr<Transport> default_remote_ GUARDED_BY(endpoints_mu_);
  /// True once any remote or bounded-handler endpoint exists; lets the
  /// pure in-process hot path skip the pre-send endpoint inspection.
  std::atomic<bool> has_special_endpoints_{false};
  /// Last sequence number accepted per wire-inbound channel
  /// (DeliverWire's gap/reorder check).
  Mutex wire_seq_mu_;
  std::map<std::pair<EndpointId, EndpointId>, std::uint64_t> wire_seq_
      GUARDED_BY(wire_seq_mu_);
  /// Endpoints whose channels take a first-contact sequence baseline and
  /// accept seq-1 restarts (AllowFirstContact).
  std::set<EndpointId> first_contact_ok_ GUARDED_BY(wire_seq_mu_);

  std::function<std::uint64_t(EndpointId, EndpointId)> delay_fn_;
  Mutex delay_mu_;
  std::condition_variable delay_cv_;
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>>
      delay_queue_ GUARDED_BY(delay_mu_);
  /// Delayed messages whose destination inbox was full, FIFO per
  /// destination. Touched only by the delay thread -- no lock (and no
  /// GUARDED_BY: FlushStalled walks it with delay_mu_ deliberately
  /// dropped so deliveries can re-enter Send).
  std::unordered_map<EndpointId, std::deque<Delayed>> stalled_;
  std::uint64_t delay_order_ GUARDED_BY(delay_mu_) = 0;
  std::thread delay_thread_;
  bool stopping_ GUARDED_BY(delay_mu_) = false;

  Stats stats_;
};

}  // namespace weaver
