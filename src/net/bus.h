// MessageBus: the simulated cluster interconnect.
//
// Weaver's deployment runs gatekeepers and shard servers as separate
// processes connected by TCP; this reproduction runs them as actors inside
// one process connected by this bus. The bus preserves the property the
// protocol depends on (paper §4.2): every (source, destination) pair is a
// reliable FIFO channel with per-channel sequence numbers, so transactions
// from one gatekeeper cannot be lost or reordered in transit. Receivers
// check the sequence numbers and fail loudly on a violation.
//
// Endpoints either own an inbox (BlockingQueue drained by their event
// loop -- shard servers) or register an inline handler invoked on the
// sender's thread (gatekeeper announce processing, which is a single
// cheap clock merge).
//
// For tests, an optional delivery-delay hook routes messages through a
// timer thread; per-channel FIFO order is still preserved (delays are
// clamped monotonically per channel), modelling a slow but ordered link.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/queue.h"
#include "common/status.h"

namespace weaver {

/// Opaque endpoint address on the bus.
using EndpointId = std::uint32_t;

struct BusMessage {
  EndpointId src = 0;
  EndpointId dst = 0;
  std::uint64_t channel_seq = 0;  // 1-based, per (src,dst) channel
  std::shared_ptr<void> payload;  // type-erased; receivers know the schema
  std::uint32_t payload_tag = 0;  // discriminator chosen by the sender
};

class MessageBus {
 public:
  struct Stats {
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_delivered{0};
  };

  MessageBus();
  ~MessageBus();
  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Registers an endpoint whose messages accumulate in an inbox that the
  /// owner drains (actor style). Returns the endpoint id.
  EndpointId RegisterInbox(std::string name,
                           std::shared_ptr<BlockingQueue<BusMessage>> inbox);

  /// Registers an endpoint with an inline delivery handler (invoked on the
  /// sender's thread, or the delay thread when delays are active).
  EndpointId RegisterHandler(std::string name,
                             std::function<void(const BusMessage&)> handler);

  /// Detaches an endpoint: subsequent sends to it are dropped (simulates a
  /// crashed server). Channel sequence state is preserved so a re-register
  /// with ReattachInbox continues the FIFO stream.
  void Detach(EndpointId id);
  void ReattachInbox(EndpointId id,
                     std::shared_ptr<BlockingQueue<BusMessage>> inbox);

  /// Sends a message. Assigns the per-channel sequence number atomically
  /// with enqueueing, so concurrent senders on one channel stay FIFO.
  /// Returns Unavailable if the destination is detached (delayed
  /// deliveries report Ok and drop on arrival -- the link cannot know).
  ///
  /// `never_block` exempts the message from the destination's inbox
  /// capacity (BlockingQueue::ForcePush): event-loop actors that send to
  /// each other (shard-to-shard node-program hop forwarding) use it so
  /// two full peers cannot deadlock pushing into one another. Bulk
  /// producers (gatekeepers, clients) keep the default blocking
  /// backpressure.
  Status Send(EndpointId src, EndpointId dst, std::uint32_t payload_tag,
              std::shared_ptr<void> payload, bool never_block = false);

  /// Installs a delivery delay (microseconds) computed per message; nullptr
  /// disables delays. Not for use concurrently with traffic. CAVEAT: node
  /// program quiescence accounting (docs/node_programs.md) relies on a
  /// shard's spawn report reaching the coordinator before the spawned
  /// hops' consume reports -- inline delivery guarantees that; delayed
  /// delivery orders only per channel, so deployments running programs
  /// must not install delays (the link-delay tests drive bare endpoints).
  void SetDelayFn(
      std::function<std::uint64_t(EndpointId, EndpointId)> delay_fn);

  const std::string& NameOf(EndpointId id) const;

  /// Depth of an inbox endpoint's queue (0 for handler endpoints and
  /// unknown ids). Producers use this as a backpressure signal: the
  /// gatekeeper NOP timer skips a round when a destination shard's inbox
  /// is above its high-water mark instead of growing it without bound.
  std::size_t QueueDepth(EndpointId id) const;

  const Stats& stats() const { return stats_; }

 private:
  struct Endpoint {
    std::string name;
    std::shared_ptr<BlockingQueue<BusMessage>> inbox;  // or...
    std::function<void(const BusMessage&)> handler;    // ...inline handler
    bool attached = true;
  };
  struct Channel {
    std::mutex mu;
    std::uint64_t next_seq = 1;
    std::uint64_t last_delivery_deadline_us = 0;  // for FIFO under delays
  };
  struct Delayed {
    std::uint64_t deliver_at_us;
    std::uint64_t order;  // tie-break, preserves global send order
    BusMessage msg;
    bool operator>(const Delayed& other) const {
      return std::tie(deliver_at_us, order) >
             std::tie(other.deliver_at_us, other.order);
    }
  };

  /// Returns false when the destination is unknown or detached (the
  /// message is dropped).
  bool Deliver(const BusMessage& msg, bool never_block);
  /// Delay-thread delivery: never blocks on a full bounded inbox.
  /// Returns false when the destination is full -- the caller parks the
  /// message in stalled_ and retries, so one slow shard cannot stall
  /// delayed traffic to every other endpoint.
  bool TryDeliver(BusMessage& msg);
  /// Flushes stalled_ in FIFO order per destination. Delay thread only,
  /// called WITHOUT delay_mu_ (deliveries may run handlers, and handlers
  /// may Send back onto the delayed bus).
  void FlushStalled();
  void DelayLoop();

  mutable std::mutex endpoints_mu_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;

  std::mutex channels_mu_;
  std::map<std::pair<EndpointId, EndpointId>, std::unique_ptr<Channel>>
      channels_;

  std::function<std::uint64_t(EndpointId, EndpointId)> delay_fn_;
  std::mutex delay_mu_;
  std::condition_variable delay_cv_;
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>>
      delay_queue_;
  /// Delayed messages whose destination inbox was full, FIFO per
  /// destination. Touched only by the delay thread -- no lock.
  std::unordered_map<EndpointId, std::deque<BusMessage>> stalled_;
  std::uint64_t delay_order_ = 0;
  std::thread delay_thread_;
  bool stopping_ = false;

  Stats stats_;
};

}  // namespace weaver
