// FaultInjectingTransport: a Transport decorator that injects
// deterministic faults into one link (docs/fault_tolerance.md#chaos).
//
// Chaos testing needs crashes at REPRODUCIBLE points in the message
// stream, not wall-clock kills: "the 200th frame to shard 1" is the same
// instant on every run, while "after 50ms" lands anywhere. The decorator
// wraps the parent-side transport of one shard process (installed via
// WeaverOptions::shard_transport_decorator) and counts the frames that
// cross it in either direction; when the configured frame count is
// reached it fires its fault exactly once:
//
//   * kill  -- SIGKILL the configured pid (the shard child), simulating
//              a hard process crash mid-stream;
//   * drop  -- stop the underlying transport, simulating a severed link
//              (the process survives but the parent sees EOF);
//   * delay -- sleep before each subsequent send, simulating a slow
//              link (does not fire once; applies from the trigger on).
//
// Everything else forwards verbatim, so a decorated link is
// byte-identical to a bare one until the fault fires. The injector is
// test/bench infrastructure compiled into the normal build: it has no
// hooks into production code paths beyond the decorator seam.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "common/status.h"
#include "net/transport.h"

namespace weaver {

struct FaultPlan {
  enum class Kind : std::uint8_t {
    kNone,      // count frames, never fire (observation only)
    kKillPid,   // SIGKILL `pid` at the trigger frame
    kDropLink,  // stop the inner transport at the trigger frame
    kDelay,     // sleep `delay_micros` before each send from the trigger on
  };
  Kind kind = Kind::kNone;
  /// Fires when the cumulative frame count (sends + receives) reaches
  /// this. 0 = on the very first frame.
  std::uint64_t after_frames = 0;
  pid_t pid = -1;                   // kKillPid
  std::uint64_t delay_micros = 0;   // kDelay
};

class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::shared_ptr<Transport> inner, FaultPlan plan);

  Status SendBytes(std::string_view bytes, bool never_block = false) override;
  void WaitWritable() override;
  void StartReceiver(
      std::function<void(const char* data, std::size_t n)> on_bytes) override;
  void Stop() override;
  bool closed() const override;

  /// Frames seen so far (both directions).
  std::uint64_t frames() const {
    return frames_.load(std::memory_order_relaxed);
  }
  /// True once the fault has fired.
  bool fired() const { return fired_.load(std::memory_order_relaxed); }

  const std::shared_ptr<Transport>& inner() const { return inner_; }

 private:
  /// Counts one frame and fires the plan if its trigger was reached.
  void CountFrame();
  void Fire();

  std::shared_ptr<Transport> inner_;
  FaultPlan plan_;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<bool> fired_{false};
};

}  // namespace weaver
