#include "net/wire.h"

#include "storage/crc32.h"

namespace weaver {
namespace wire {

namespace {

void PutU32Le(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64Le(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t GetU32Le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetU64Le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodeFrame(const FrameHeader& header, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  PutU32Le(&out, kFrameMagic);
  out.push_back(static_cast<char>(kWireVersion));
  PutU32Le(&out, header.tag);
  PutU32Le(&out, header.src);
  PutU32Le(&out, header.dst);
  PutU64Le(&out, header.channel_seq);
  PutU32Le(&out, static_cast<std::uint32_t>(payload.size()));
  PutU32Le(&out, storage::Crc32(payload));
  out.append(payload.data(), payload.size());
  return out;
}

Status FrameParser::Next(FrameHeader* header, std::string* payload,
                         bool* ready) {
  *ready = false;
  if (!poisoned_.ok()) return poisoned_;

  // Compact the buffer once the consumed prefix dominates it, so a
  // long-lived stream does not grow without bound.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }

  if (buf_.size() - consumed_ < kHeaderSize) return Status::Ok();
  const char* h = buf_.data() + consumed_;
  const std::uint32_t magic = GetU32Le(h);
  if (magic != kFrameMagic) {
    poisoned_ = Status::InvalidArgument("bad frame magic: corrupt stream");
    return poisoned_;
  }
  const std::uint8_t version = static_cast<std::uint8_t>(h[4]);
  if (version != kWireVersion) {
    poisoned_ = Status::InvalidArgument(
        "wire version mismatch: got " + std::to_string(version) +
        ", want " + std::to_string(kWireVersion));
    return poisoned_;
  }
  FrameHeader hdr;
  hdr.tag = GetU32Le(h + 5);
  hdr.src = GetU32Le(h + 9);
  hdr.dst = GetU32Le(h + 13);
  hdr.channel_seq = GetU64Le(h + 17);
  hdr.payload_size = GetU32Le(h + 25);
  hdr.payload_crc = GetU32Le(h + 29);
  if (hdr.payload_size > kMaxFramePayload) {
    poisoned_ = Status::InvalidArgument("frame payload size over limit");
    return poisoned_;
  }
  if (buf_.size() - consumed_ < kHeaderSize + hdr.payload_size) {
    return Status::Ok();  // need more bytes
  }
  const std::string_view body(buf_.data() + consumed_ + kHeaderSize,
                              hdr.payload_size);
  if (storage::Crc32(body) != hdr.payload_crc) {
    poisoned_ = Status::InvalidArgument("frame payload CRC mismatch");
    return poisoned_;
  }
  *header = hdr;
  payload->assign(body.data(), body.size());
  raw_offset_ = consumed_;
  raw_size_ = kHeaderSize + hdr.payload_size;
  consumed_ += raw_size_;
  *ready = true;
  return Status::Ok();
}

}  // namespace wire
}  // namespace weaver
