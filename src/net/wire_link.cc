#include "net/wire_link.h"

#include <cassert>
#include <cstdio>

namespace weaver {

WireLink::WireLink(Options options) : options_(std::move(options)) {
  assert(options_.bus != nullptr);
  assert(options_.transport != nullptr);
  assert(options_.decode != nullptr);
  options_.transport->StartReceiver(
      [this](const char* data, std::size_t n) { OnBytes(data, n); });
}

WireLink::~WireLink() {
  Stop();
  // The receive thread holds raw pointers into this object (the parser,
  // the stats): wait until its end-of-stream marker confirms it is done
  // with us. Stop() shut the transport down, so the marker is imminent.
  MutexLock lk(mu_);
  while (!receiver_done_) closed_cv_.wait(lk.native());
}

void WireLink::Stop() {
  {
    // Mark the local stop BEFORE the transport goes down: the receive
    // thread's end-of-stream marker races this call, and only a genuine
    // peer EOF may surface as Unavailable.
    MutexLock lk(mu_);
    stopping_ = true;
  }
  options_.transport->Stop();
  MutexLock lk(mu_);
  closed_ = true;
  closed_cv_.notify_all();
}

void WireLink::WaitClosed() {
  MutexLock lk(mu_);
  while (!closed_) closed_cv_.wait(lk.native());
}

bool WireLink::closed() const {
  MutexLock lk(mu_);
  return closed_;
}

Status WireLink::error() const {
  MutexLock lk(mu_);
  return error_;
}

void WireLink::Fail(const Status& status) {
  std::fprintf(stderr, "weaver: wire link %s failed: %s\n",
               options_.name.c_str(), status.ToString().c_str());
  bool report = false;
  {
    MutexLock lk(mu_);
    if (error_.ok()) error_ = status;
    closed_ = true;
    if (!down_reported_) {
      down_reported_ = true;
      report = true;
    }
    closed_cv_.notify_all();
  }
  options_.transport->Stop();
  if (report && options_.on_down) options_.on_down(status);
}

void WireLink::OnBytes(const char* data, std::size_t n) {
  if (data == nullptr) {
    // End of stream. After a local Stop() this is the expected clean
    // shutdown (error stays OK). Otherwise the PEER went away -- EOF or
    // ECONNRESET from a dead process -- which is a link-down event, not
    // stream corruption: record Unavailable and tell the supervisor, but
    // never poison anything a healthy restart would need.
    bool report = false;
    Status down;
    {
      MutexLock lk(mu_);
      if (!stopping_ && error_.ok()) {
        error_ = Status::Unavailable("peer closed the link");
      }
      if (!stopping_ && !down_reported_) {
        down_reported_ = true;
        report = true;
        down = error_;
      }
      closed_ = true;
      receiver_done_ = true;
      closed_cv_.notify_all();
    }
    if (report && options_.on_down) options_.on_down(down);
    return;
  }
  {
    MutexLock lk(mu_);
    if (closed_) return;  // poisoned link: drop the rest of the stream
  }
  options_.bus->NoteWireBytesReceived(n);
  parser_.Feed(data, n);
  while (true) {
    wire::FrameHeader header;
    std::string payload;
    bool ready = false;
    const Status st = parser_.Next(&header, &payload, &ready);
    if (!st.ok()) {
      Fail(st);
      return;
    }
    if (!ready) return;

    // Hub forwarding first: a frame addressed to another remote endpoint
    // of this bus transits verbatim -- raw bytes, no re-framing, no
    // second CRC pass, one endpoint-table lookup (ForwardFrame tells us
    // with InvalidArgument when the destination is local instead).
    // never_block by tag: this thread serializes all of one child's
    // traffic and must not wedge forwarding program frames into a
    // congested peer.
    const bool never_block =
        options_.never_block && options_.never_block(header.tag);
    const Status fwd =
        options_.bus->ForwardFrame(header.dst, parser_.raw_frame(),
                                   never_block);
    if (fwd.ok()) {
      stats_.frames_forwarded.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!fwd.IsInvalidArgument()) {
      // A remote destination whose process is gone: a routing data-loss
      // event the sender cannot see, so count it -- but print only the
      // first and every 1024th. During an outage every surviving shard
      // keeps forwarding hops at the dead peer until recovery detaches
      // it; one line per dropped frame would bury the useful output.
      stats_.deliver_errors.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t drops =
          stats_.forward_drops.fetch_add(1, std::memory_order_relaxed);
      if (drops % 1024 == 0) {
        std::fprintf(stderr,
                     "weaver: wire link %s: dropping frame for dead remote "
                     "endpoint %u (%llu dropped so far): %s\n",
                     options_.name.c_str(), header.dst,
                     static_cast<unsigned long long>(drops + 1),
                     fwd.ToString().c_str());
      }
      continue;
    }

    // InvalidArgument: the destination is a local endpoint -- decode and
    // deliver.
    auto decoded = options_.decode(header.tag, payload);
    if (!decoded.ok()) {
      stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
      Fail(decoded.status());
      return;
    }
    BusMessage msg;
    msg.src = header.src;
    msg.dst = header.dst;
    msg.channel_seq = header.channel_seq;
    msg.payload_tag = header.tag;
    msg.payload = std::move(decoded).value();
    const Status delivered = options_.bus->DeliverWire(std::move(msg),
                                                       never_block);
    if (!delivered.ok()) {
      stats_.deliver_errors.fetch_add(1, std::memory_order_relaxed);
      if (delivered.IsInternal()) {
        // Sequence violation: the FIFO contract is broken; fail loudly.
        Fail(delivered);
        return;
      }
      // Unavailable (detached/stopped local endpoint) during shutdown is
      // expected; drop and continue.
      continue;
    }
    stats_.frames_delivered.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace weaver
