// Wire serialization for the message bus: the zero-dependency codec layer
// that turns bus messages into bytes a real transport can carry between
// processes (docs/transport.md).
//
// Two pieces live here:
//
//   * wire::Writer / wire::Reader -- a compact binary encoding built on
//     LEB128 varints (unsigned ints), length-prefixed strings, and
//     varint-counted vectors. Every integer the schemas carry is written
//     as a varint, so small values (timestamps early in an epoch, short
//     vectors) cost one byte instead of eight. Encoding is canonical:
//     the writer always emits minimal-length varints, which is what makes
//     encode(decode(encode(x))) byte-identical.
//
//   * frames -- the transport unit. Every frame is a fixed-layout header
//     (magic, version, payload tag, source/destination endpoint ids, the
//     per-channel sequence number, payload length, payload CRC32)
//     followed by the payload bytes. The header is fixed-width so a
//     stream reader can find the payload length before parsing anything
//     else; the CRC covers the payload so corruption is detected before a
//     decoder ever sees the bytes. FrameParser incrementally consumes a
//     byte stream (TCP segments arrive at arbitrary boundaries) and
//     yields complete frames.
//
// Versioning rules (docs/transport.md#versioning): the header carries a
// wire version; receivers reject frames from a different major version
// loudly rather than guessing. Schema evolution happens by adding fields
// at the END of a payload -- decoders must tolerate trailing bytes they
// do not understand, and must treat truncated payloads as corruption.
//
// This header depends only on common/status + common/result, so the net
// layer stays free of core message types; the per-schema codecs live in
// core/message_codec.h.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace weaver {
namespace wire {

/// Append-only encoder: varint ints, length-prefixed strings.
class Writer {
 public:
  void U8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  /// LEB128 unsigned varint (1 byte for values < 128).
  void VarU64(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }
  void VarU32(std::uint32_t v) { VarU64(v); }

  /// Length-prefixed byte string (varint length + raw bytes).
  void String(std::string_view s) {
    VarU64(s.size());
    buf_.append(s.data(), s.size());
  }

  /// Vector prefix: callers write the count, then each element.
  void Count(std::size_t n) { VarU64(n); }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Sequential decoder over a byte string. All getters return a non-OK
/// status on truncated or malformed input instead of reading out of
/// bounds; a payload with trailing bytes is legal (forward compatibility:
/// newer senders append fields).
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status U8(std::uint8_t* out) {
    if (pos_ >= data_.size()) return Truncated();
    *out = static_cast<std::uint8_t>(data_[pos_++]);
    return Status::Ok();
  }

  Status VarU64(std::uint64_t* out) {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) return Truncated();
      const std::uint8_t byte = static_cast<std::uint8_t>(data_[pos_++]);
      if (shift == 63 && (byte & 0x7e) != 0) {
        return Status::InvalidArgument("varint overflows 64 bits");
      }
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) return Status::InvalidArgument("varint too long");
    }
    *out = v;
    return Status::Ok();
  }

  Status VarU32(std::uint32_t* out) {
    std::uint64_t v = 0;
    WEAVER_RETURN_IF_ERROR(VarU64(&v));
    if (v > 0xffffffffULL) {
      return Status::InvalidArgument("varint overflows 32 bits");
    }
    *out = static_cast<std::uint32_t>(v);
    return Status::Ok();
  }

  Status String(std::string* out) {
    std::uint64_t len = 0;
    WEAVER_RETURN_IF_ERROR(VarU64(&len));
    if (len > data_.size() - pos_) return Truncated();
    out->assign(data_.data() + pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return Status::Ok();
  }

  /// Vector count with a sanity cap: a corrupt count must not drive a
  /// multi-gigabyte reserve before per-element reads hit the end of the
  /// buffer. Every element costs at least one byte, so the remaining
  /// input bounds any honest count.
  Status Count(std::size_t* out) {
    std::uint64_t n = 0;
    WEAVER_RETURN_IF_ERROR(VarU64(&n));
    if (n > remaining()) {
      return Status::InvalidArgument("vector count exceeds payload size");
    }
    *out = static_cast<std::size_t>(n);
    return Status::Ok();
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("truncated wire payload");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- Frames -----------------------------------------------------------------

inline constexpr std::uint32_t kFrameMagic = 0x57565231;  // "WVR1"
inline constexpr std::uint8_t kWireVersion = 1;
/// Upper bound on a frame payload; anything larger is corruption (the
/// largest honest payloads are hop batches, far below this).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Fixed-width frame header. Serialized little-endian in the field order
/// below; kHeaderSize is the exact on-wire size.
struct FrameHeader {
  std::uint32_t tag = 0;          // payload schema discriminator (MsgTag)
  std::uint32_t src = 0;          // sending endpoint id
  std::uint32_t dst = 0;          // destination endpoint id
  std::uint64_t channel_seq = 0;  // per-(src,dst) FIFO sequence number
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
};

inline constexpr std::size_t kHeaderSize =
    /*magic*/ 4 + /*version*/ 1 + /*tag*/ 4 + /*src*/ 4 + /*dst*/ 4 +
    /*seq*/ 8 + /*len*/ 4 + /*crc*/ 4;

/// Serializes one frame (header + payload) ready for a stream transport.
std::string EncodeFrame(const FrameHeader& header, std::string_view payload);

/// Incremental frame decoder over a byte stream. Feed() arbitrary chunks;
/// Next() yields complete frames. A malformed header or CRC mismatch
/// poisons the parser (framing on a corrupt stream is unrecoverable) --
/// every later Next() repeats the error so the link can fail loudly.
class FrameParser {
 public:
  /// Appends received bytes to the internal buffer.
  void Feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame. Returns OK with *ready = true and
  /// the frame filled in; OK with *ready = false when more bytes are
  /// needed; non-OK on a corrupt stream.
  Status Next(FrameHeader* header, std::string* payload, bool* ready);

  /// The raw bytes (header + payload) of the frame the last successful
  /// Next() returned, for verbatim forwarding without re-framing or
  /// re-checksumming. Valid only until the next Feed() or Next() call.
  std::string_view raw_frame() const {
    return std::string_view(buf_.data() + raw_offset_, raw_size_);
  }

  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::string buf_;
  std::size_t consumed_ = 0;  // prefix already handed out as frames
  std::size_t raw_offset_ = 0;  // last frame, for raw_frame()
  std::size_t raw_size_ = 0;
  Status poisoned_;           // sticky decode failure
};

}  // namespace wire
}  // namespace weaver
