// WireLink: binds one Transport's inbound byte stream to a MessageBus
// (docs/transport.md#links-and-hubs).
//
// The link owns a FrameParser fed from the transport's receive thread.
// For each complete frame it either:
//
//   * delivers locally -- decodes the payload (via the injected decoder,
//     so the net layer stays free of core message types) and hands the
//     rebuilt BusMessage to MessageBus::DeliverWire, which enforces the
//     per-channel sequence numbers and fails loudly on a violation; or
//
//   * forwards -- when the frame's destination is itself a remote
//     (transport-backed) endpoint of this bus, the frame is re-emitted
//     verbatim to that endpoint's transport. This is what makes a
//     deployment's parent process a hub: shard-to-shard traffic between
//     two child processes transits the parent without being decoded,
//     and because each inbound stream is processed in order by one
//     thread, a shard's spawn-accounting frame is delivered to the
//     coordinator before its hop batch is forwarded to the peer --
//     preserving the spawn-before-consume order the quiescence protocol
//     needs (docs/node_programs.md).
//
// A corrupt stream (bad magic, CRC mismatch, version skew) or a sequence
// violation is unrecoverable: the link records the error, prints it, and
// stops consuming. Loud beats wrong.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/bus.h"
#include "net/transport.h"
#include "net/wire.h"

namespace weaver {

class WireLink {
 public:
  struct Options {
    MessageBus* bus = nullptr;
    std::shared_ptr<Transport> transport;
    /// Rebuilds a payload object from frame bytes (core/message_codec's
    /// DecodePayload, injected to keep net/ schema-free).
    std::function<Result<std::shared_ptr<void>>(std::uint32_t tag,
                                                std::string_view bytes)>
        decode;
    /// Per-tag delivery policy: true = never block on a bounded inbox
    /// (core/message_codec's WireNeverBlock).
    std::function<bool(std::uint32_t tag)> never_block;
    /// Invoked (at most once, off the lock) when the link goes down for
    /// any reason other than a local Stop(): peer EOF/reset surfaces as
    /// Unavailable, stream corruption as the parser's error. Supervisors
    /// hang crash detection off this; the callback must not re-enter the
    /// link beyond closed()/error()/stats().
    std::function<void(const Status&)> on_down;
    std::string name;  // diagnostics
  };

  struct Stats {
    std::atomic<std::uint64_t> frames_delivered{0};
    std::atomic<std::uint64_t> frames_forwarded{0};
    std::atomic<std::uint64_t> decode_errors{0};
    std::atomic<std::uint64_t> deliver_errors{0};  // incl. seq violations
    /// Forwarded frames dropped because their remote destination was
    /// detached (only the first and every 1024th are printed).
    std::atomic<std::uint64_t> forward_drops{0};
  };

  /// Starts receiving immediately.
  explicit WireLink(Options options);
  ~WireLink();
  WireLink(const WireLink&) = delete;
  WireLink& operator=(const WireLink&) = delete;

  /// Stops the underlying transport (and thus the receive thread).
  void Stop();

  /// Blocks until the link stops receiving (peer EOF, Stop(), or a fatal
  /// stream error). Shard-server processes park on this.
  void WaitClosed();

  bool closed() const;
  /// First fatal error, if any (OK while healthy).
  Status error() const;

  const Stats& stats() const { return stats_; }

 private:
  void OnBytes(const char* data, std::size_t n);
  void Fail(const Status& status);

  Options options_;
  wire::FrameParser parser_;  // receive thread only
  mutable Mutex mu_;
  std::condition_variable closed_cv_;
  bool closed_ GUARDED_BY(mu_) = false;
  /// Set by Stop() BEFORE the transport is stopped, so the receive
  /// thread's end-of-stream marker can tell a local shutdown (clean,
  /// error stays OK) from a genuine peer EOF (link-down: Unavailable +
  /// on_down).
  bool stopping_ GUARDED_BY(mu_) = false;
  /// on_down fires at most once.
  bool down_reported_ GUARDED_BY(mu_) = false;
  /// Set by the receive thread's end-of-stream marker: the thread will
  /// never touch this link again. The destructor waits for it -- the
  /// transport may be shared, so transport destruction (which joins the
  /// thread) can happen after the link is gone.
  bool receiver_done_ GUARDED_BY(mu_) = false;
  Status error_ GUARDED_BY(mu_);
  Stats stats_;
};

}  // namespace weaver
