#include "net/bus.h"

#include <cassert>

#include "common/clock.h"

namespace weaver {

MessageBus::MessageBus() {
  delay_thread_ = std::thread([this] { DelayLoop(); });
}

MessageBus::~MessageBus() {
  {
    std::lock_guard<std::mutex> lk(delay_mu_);
    stopping_ = true;
    delay_cv_.notify_all();
  }
  if (delay_thread_.joinable()) delay_thread_.join();
}

EndpointId MessageBus::RegisterInbox(
    std::string name, std::shared_ptr<BlockingQueue<BusMessage>> inbox) {
  std::lock_guard<std::mutex> lk(endpoints_mu_);
  auto ep = std::make_unique<Endpoint>();
  ep->name = std::move(name);
  ep->inbox = std::move(inbox);
  endpoints_.push_back(std::move(ep));
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

EndpointId MessageBus::RegisterHandler(
    std::string name, std::function<void(const BusMessage&)> handler) {
  std::lock_guard<std::mutex> lk(endpoints_mu_);
  auto ep = std::make_unique<Endpoint>();
  ep->name = std::move(name);
  ep->handler = std::move(handler);
  endpoints_.push_back(std::move(ep));
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void MessageBus::Detach(EndpointId id) {
  std::lock_guard<std::mutex> lk(endpoints_mu_);
  assert(id < endpoints_.size());
  endpoints_[id]->attached = false;
  endpoints_[id]->inbox.reset();
}

void MessageBus::ReattachInbox(
    EndpointId id, std::shared_ptr<BlockingQueue<BusMessage>> inbox) {
  std::lock_guard<std::mutex> lk(endpoints_mu_);
  assert(id < endpoints_.size());
  endpoints_[id]->inbox = std::move(inbox);
  endpoints_[id]->attached = true;
}

void MessageBus::SetDelayFn(
    std::function<std::uint64_t(EndpointId, EndpointId)> delay_fn) {
  delay_fn_ = std::move(delay_fn);
}

Status MessageBus::Send(EndpointId src, EndpointId dst,
                        std::uint32_t payload_tag,
                        std::shared_ptr<void> payload, bool never_block) {
  BusMessage msg;
  msg.src = src;
  msg.dst = dst;
  msg.payload = std::move(payload);
  msg.payload_tag = payload_tag;

  Channel* ch = nullptr;
  {
    std::lock_guard<std::mutex> lk(channels_mu_);
    auto& slot = channels_[{src, dst}];
    if (!slot) slot = std::make_unique<Channel>();
    ch = slot.get();
  }

  std::uint64_t delay_us =
      delay_fn_ ? delay_fn_(src, dst) : 0;

  // Sequence assignment must be atomic with handing the message to the
  // delivery path, otherwise two concurrent senders could invert order on
  // the channel.
  std::lock_guard<std::mutex> ch_lk(ch->mu);
  msg.channel_seq = ch->next_seq++;
  stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);

  if (delay_us == 0) {
    if (!Deliver(msg, never_block)) {
      return Status::Unavailable("endpoint " + std::to_string(dst) +
                                 " is detached");
    }
    return Status::Ok();
  }

  // Delayed path: clamp the deadline so it never precedes an earlier
  // message on the same channel (FIFO under heterogeneous delays).
  const std::uint64_t deadline =
      std::max(NowMicros() + delay_us, ch->last_delivery_deadline_us);
  ch->last_delivery_deadline_us = deadline;
  {
    std::lock_guard<std::mutex> lk(delay_mu_);
    delay_queue_.push(Delayed{deadline, delay_order_++, msg});
    delay_cv_.notify_one();
  }
  return Status::Ok();
}

bool MessageBus::Deliver(const BusMessage& msg, bool never_block) {
  std::shared_ptr<BlockingQueue<BusMessage>> inbox;
  std::function<void(const BusMessage&)> handler;
  {
    std::lock_guard<std::mutex> lk(endpoints_mu_);
    if (msg.dst >= endpoints_.size()) return false;
    Endpoint& ep = *endpoints_[msg.dst];
    if (!ep.attached) return false;  // crashed server: message dropped
    inbox = ep.inbox;
    handler = ep.handler;
  }
  if (inbox) {
    // A closed inbox (stopped server) drops the message exactly like a
    // detached endpoint, and the sender must learn it -- program seeding
    // relies on a failed Send to abort instead of waiting forever on
    // accounting that can never come.
    const bool pushed =
        never_block ? inbox->ForcePush(msg) : inbox->Push(msg);
    if (!pushed) return false;
  } else if (handler) {
    handler(msg);
  }
  stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool MessageBus::TryDeliver(BusMessage& msg) {
  std::shared_ptr<BlockingQueue<BusMessage>> inbox;
  std::function<void(const BusMessage&)> handler;
  {
    std::lock_guard<std::mutex> lk(endpoints_mu_);
    if (msg.dst >= endpoints_.size()) return true;  // dropped
    Endpoint& ep = *endpoints_[msg.dst];
    if (!ep.attached) return true;  // crashed server: message dropped
    inbox = ep.inbox;
    handler = ep.handler;
  }
  if (inbox) {
    if (inbox->TryPush(msg) == BlockingQueue<BusMessage>::PushResult::kFull) {
      return false;  // bounded inbox at capacity: caller parks + retries
    }
  } else if (handler) {
    handler(msg);
  }
  stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MessageBus::FlushStalled() {
  // Runs on the delay thread with delay_mu_ NOT held: stalled_ is
  // delay-thread-private, and deliveries must never run under the lock
  // (a handler may Send back onto the delayed bus).
  for (auto it = stalled_.begin(); it != stalled_.end();) {
    auto& q = it->second;
    while (!q.empty() && TryDeliver(q.front())) q.pop_front();
    it = q.empty() ? stalled_.erase(it) : std::next(it);
  }
}

void MessageBus::DelayLoop() {
  std::unique_lock<std::mutex> lk(delay_mu_);
  while (true) {
    if (stopping_) return;
    if (!stalled_.empty()) {
      lk.unlock();
      FlushStalled();
      lk.lock();
      if (stopping_) return;
    }
    if (delay_queue_.empty() && stalled_.empty()) {
      delay_cv_.wait(lk, [&] { return stopping_ || !delay_queue_.empty(); });
      continue;
    }
    const std::uint64_t now = NowMicros();
    // While something is stalled, poll instead of sleeping until the next
    // deadline -- the blocked destination drains on its own schedule.
    const std::uint64_t next_deadline =
        delay_queue_.empty() ? now + 1000 : delay_queue_.top().deliver_at_us;
    if (next_deadline > now) {
      const std::uint64_t cap =
          stalled_.empty() ? next_deadline - now
                           : std::min<std::uint64_t>(next_deadline - now, 1000);
      delay_cv_.wait_for(lk, std::chrono::microseconds(cap));
      continue;
    }
    Delayed d = delay_queue_.top();
    delay_queue_.pop();
    lk.unlock();
    // Per-destination FIFO: while earlier messages to this destination
    // are parked, later ones must queue behind them. Deliveries run
    // without delay_mu_ so a handler may Send (even delayed) safely.
    auto sit = stalled_.find(d.msg.dst);
    if (sit != stalled_.end() && !sit->second.empty()) {
      sit->second.push_back(std::move(d.msg));
    } else if (!TryDeliver(d.msg)) {
      stalled_[d.msg.dst].push_back(std::move(d.msg));
    }
    lk.lock();
  }
}

std::size_t MessageBus::QueueDepth(EndpointId id) const {
  std::shared_ptr<BlockingQueue<BusMessage>> inbox;
  {
    std::lock_guard<std::mutex> lk(endpoints_mu_);
    if (id >= endpoints_.size()) return 0;
    inbox = endpoints_[id]->inbox;
  }
  return inbox ? inbox->Size() : 0;
}

const std::string& MessageBus::NameOf(EndpointId id) const {
  std::lock_guard<std::mutex> lk(endpoints_mu_);
  static const std::string kUnknown = "?";
  if (id >= endpoints_.size()) return kUnknown;
  return endpoints_[id]->name;
}

}  // namespace weaver
