#include "net/bus.h"

#include <cassert>
#include <cstdio>

#include "common/clock.h"
#include "net/wire.h"

namespace weaver {

MessageBus::MessageBus() {
  delay_thread_ = std::thread([this] { DelayLoop(); });
}

MessageBus::~MessageBus() {
  {
    MutexLock lk(delay_mu_);
    stopping_ = true;
    delay_cv_.notify_all();
  }
  if (delay_thread_.joinable()) delay_thread_.join();
  // The exported counters and depth gauges read this object; the
  // registry (owned by the deployment, destroyed after the bus) must
  // forget them first.
  if (metrics_ != nullptr) metrics_->DropPrefix("bus.");
}

void MessageBus::SetMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) return;
  registry->AddCounterFn("bus.messages_sent", [this] {
    return stats_.messages_sent.load(std::memory_order_relaxed);
  });
  registry->AddCounterFn("bus.messages_delivered", [this] {
    return stats_.messages_delivered.load(std::memory_order_relaxed);
  });
  registry->AddCounterFn("bus.wire_frames_sent", [this] {
    return stats_.wire_frames_sent.load(std::memory_order_relaxed);
  });
  registry->AddCounterFn("bus.wire_frames_received", [this] {
    return stats_.wire_frames_received.load(std::memory_order_relaxed);
  });
  registry->AddCounterFn("bus.wire_seq_violations", [this] {
    return stats_.wire_seq_violations.load(std::memory_order_relaxed);
  });
  registry->AddCounterFn("bus.handler_capacity_drops", [this] {
    return stats_.handler_capacity_drops.load(std::memory_order_relaxed);
  });
  registry->AddCounterFn("bus.wire_bytes_sent", [this] {
    return stats_.wire_bytes_sent.load(std::memory_order_relaxed);
  });
  registry->AddCounterFn("bus.wire_bytes_received", [this] {
    return stats_.wire_bytes_received.load(std::memory_order_relaxed);
  });
  // Endpoints registered before SetMetrics get their depth gauges now;
  // later registrations add theirs inline. Remote endpoints export the
  // depth their owning process last reported (NoteRemoteDepth), so the
  // scraped view covers remote inboxes too.
  std::vector<std::pair<EndpointId, std::string>> queues;
  {
    MutexLock lk(endpoints_mu_);
    for (std::size_t id = 0; id < endpoints_.size(); ++id) {
      if (endpoints_[id]->inbox != nullptr ||
          endpoints_[id]->remote != nullptr) {
        queues.emplace_back(static_cast<EndpointId>(id),
                            endpoints_[id]->name);
      }
    }
  }
  for (const auto& [id, name] : queues) ExportEndpointDepth(id, name);
}

void MessageBus::ExportEndpointDepth(EndpointId id, const std::string& name) {
  if (metrics_ == nullptr) return;
  metrics_->AddGaugeFn("bus." + name + ".depth", [this, id] {
    return static_cast<std::int64_t>(QueueDepth(id));
  });
}

EndpointId MessageBus::RegisterInbox(
    std::string name, std::shared_ptr<BlockingQueue<BusMessage>> inbox) {
  EndpointId id;
  std::string gauge_name;
  {
    MutexLock lk(endpoints_mu_);
    auto ep = std::make_unique<Endpoint>();
    ep->name = std::move(name);
    ep->inbox = std::move(inbox);
    gauge_name = ep->name;
    endpoints_.push_back(std::move(ep));
    id = static_cast<EndpointId>(endpoints_.size() - 1);
  }
  ExportEndpointDepth(id, gauge_name);
  return id;
}

EndpointId MessageBus::RegisterHandler(
    std::string name, std::function<void(const BusMessage&)> handler,
    std::size_t capacity) {
  MutexLock lk(endpoints_mu_);
  auto ep = std::make_unique<Endpoint>();
  ep->name = std::move(name);
  ep->handler = std::move(handler);
  ep->handler_capacity = capacity;
  if (capacity > 0) {
    has_special_endpoints_.store(true, std::memory_order_relaxed);
  }
  endpoints_.push_back(std::move(ep));
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

EndpointId MessageBus::RegisterRemote(std::string name,
                                      std::shared_ptr<Transport> transport) {
  EndpointId id;
  std::string gauge_name;
  {
    MutexLock lk(endpoints_mu_);
    auto ep = std::make_unique<Endpoint>();
    ep->name = std::move(name);
    ep->remote = std::move(transport);
    ep->remote_depth = std::make_shared<std::atomic<std::size_t>>(0);
    has_special_endpoints_.store(true, std::memory_order_relaxed);
    gauge_name = ep->name;
    endpoints_.push_back(std::move(ep));
    id = static_cast<EndpointId>(endpoints_.size() - 1);
  }
  ExportEndpointDepth(id, gauge_name);
  return id;
}

void MessageBus::SetWireEncoder(
    std::function<Result<std::string>(std::uint32_t,
                                      const std::shared_ptr<void>&)>
        encoder) {
  wire_encoder_ = std::move(encoder);
}

void MessageBus::SetDefaultRemote(std::shared_ptr<Transport> transport) {
  MutexLock lk(endpoints_mu_);
  default_remote_ = std::move(transport);
  if (default_remote_ != nullptr) {
    has_special_endpoints_.store(true, std::memory_order_relaxed);
  }
}

Status MessageBus::ForwardFrame(EndpointId dst, std::string_view frame,
                                bool never_block) {
  std::shared_ptr<Transport> transport;
  {
    MutexLock lk(endpoints_mu_);
    if (dst >= endpoints_.size() || endpoints_[dst]->remote == nullptr) {
      return Status::InvalidArgument("endpoint " + std::to_string(dst) +
                                     " is not remote");
    }
    if (!endpoints_[dst]->attached) {
      return Status::Unavailable("remote endpoint " + std::to_string(dst) +
                                 " is detached");
    }
    transport = endpoints_[dst]->remote;
  }
  return transport->SendBytes(frame, never_block);
}

Status MessageBus::DeliverWire(BusMessage msg, bool never_block) {
  // The sequence number was assigned by the SENDING bus; verify it
  // continues this channel's gap-free FIFO stream. Any violation means
  // the link reordered or lost a frame -- fail loudly, never paper over.
  {
    MutexLock lk(wire_seq_mu_);
    const auto key = std::make_pair(msg.src, msg.dst);
    const auto it = wire_seq_.find(key);
    // Idempotent-protocol channels (AllowFirstContact) baseline on the
    // first frame observed and re-baseline on a seq-1 restart: during
    // process failover the hub drops fenced frames, burning sender
    // sequence numbers a fresh receiver never sees, and a straggling
    // reset can restart the sender's stream after contact was made.
    const bool lenient = first_contact_ok_.count(msg.src) != 0 ||
                         first_contact_ok_.count(msg.dst) != 0;
    const std::uint64_t want = (it == wire_seq_.end()) ? 1 : it->second + 1;
    const bool ok = msg.channel_seq == want ||
                    (lenient && (it == wire_seq_.end() ||
                                 msg.channel_seq == 1));
    if (!ok) {
      stats_.wire_seq_violations.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "weaver: wire FIFO violation on channel %u->%u: got seq "
                   "%llu, want %llu\n",
                   msg.src, msg.dst,
                   static_cast<unsigned long long>(msg.channel_seq),
                   static_cast<unsigned long long>(want));
      return Status::Internal(
          "wire channel sequence violation: got " +
          std::to_string(msg.channel_seq) + ", want " + std::to_string(want) +
          " on channel " + std::to_string(msg.src) + "->" +
          std::to_string(msg.dst));
    }
    wire_seq_[key] = msg.channel_seq;
  }
  stats_.wire_frames_received.fetch_add(1, std::memory_order_relaxed);
  if (!Deliver(msg, never_block)) {
    return Status::Unavailable("endpoint " + std::to_string(msg.dst) +
                               " is detached or stopped");
  }
  return Status::Ok();
}

void MessageBus::Detach(EndpointId id) {
  MutexLock lk(endpoints_mu_);
  assert(id < endpoints_.size());
  endpoints_[id]->attached = false;
  endpoints_[id]->inbox.reset();
}

void MessageBus::ReattachInbox(
    EndpointId id, std::shared_ptr<BlockingQueue<BusMessage>> inbox) {
  MutexLock lk(endpoints_mu_);
  assert(id < endpoints_.size());
  endpoints_[id]->inbox = std::move(inbox);
  endpoints_[id]->attached = true;
}

void MessageBus::AllowFirstContact(EndpointId id) {
  MutexLock lk(wire_seq_mu_);
  first_contact_ok_.insert(id);
}

void MessageBus::ResetPeer(EndpointId id) {
  // Send side: restart every channel touching the peer at seq 1. The
  // Channel objects are reset IN PLACE under their own lock -- erasing
  // them would free a mutex a concurrent Send may be holding. Lock order
  // (channels_mu_ then ch->mu) matches Send.
  std::vector<Channel*> touching;
  {
    MutexLock lk(channels_mu_);
    for (auto& [key, ch] : channels_) {
      if (key.first == id || key.second == id) touching.push_back(ch.get());
    }
  }
  for (Channel* ch : touching) {
    MutexLock lk(ch->mu);
    ch->next_seq = 1;
    ch->last_delivery_deadline_us = 0;
  }
  // Receive side: forget DeliverWire's last-accepted sequence numbers for
  // streams from or to the peer, so the fresh process's seq-1 frames pass
  // the gap check instead of reading as a FIFO violation.
  {
    MutexLock lk(wire_seq_mu_);
    for (auto it = wire_seq_.begin(); it != wire_seq_.end();) {
      if (it->first.first == id || it->first.second == id) {
        it = wire_seq_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void MessageBus::ReplaceRemote(EndpointId id,
                               std::shared_ptr<Transport> transport) {
  MutexLock lk(endpoints_mu_);
  if (id >= endpoints_.size() || endpoints_[id]->remote == nullptr) {
    std::fprintf(stderr,
                 "weaver: ReplaceRemote on non-remote endpoint %u ignored\n",
                 id);
    return;
  }
  endpoints_[id]->remote = std::move(transport);
  endpoints_[id]->attached = true;
  if (endpoints_[id]->remote_depth) {
    endpoints_[id]->remote_depth->store(0, std::memory_order_relaxed);
  }
}

void MessageBus::SetDelayFn(
    std::function<std::uint64_t(EndpointId, EndpointId)> delay_fn) {
  delay_fn_ = std::move(delay_fn);
}

Status MessageBus::Send(EndpointId src, EndpointId dst,
                        std::uint32_t payload_tag,
                        std::shared_ptr<void> payload, bool never_block) {
  BusMessage msg;
  msg.src = src;
  msg.dst = dst;
  msg.payload = std::move(payload);
  msg.payload_tag = payload_tag;

  // Destination kind decides the path: remote endpoints encode + ship
  // frames, bounded handler endpoints may shed deferred load. Pure
  // in-process deployments (no remote, no bounded handler anywhere) skip
  // the inspection -- the hot path pays no extra endpoint lock.
  std::shared_ptr<Transport> remote;
  std::size_t handler_capacity = 0;
  std::shared_ptr<std::atomic<std::size_t>> deferred;
  if (has_special_endpoints_.load(std::memory_order_relaxed)) {
    MutexLock lk(endpoints_mu_);
    if (dst < endpoints_.size()) {
      Endpoint& ep = *endpoints_[dst];
      remote = ep.attached ? ep.remote : nullptr;
      if (ep.handler && ep.handler_capacity > 0) {
        handler_capacity = ep.handler_capacity;
        deferred = ep.deferred;
      }
    } else if (default_remote_ != nullptr) {
      // A destination this bus never registered: divert over the default
      // transport (a child process addressing a dynamic parent-side
      // endpoint -- session replies, the parent's internal reply router).
      // Registered endpoints, detached or not, never take this path.
      remote = default_remote_;
    }
  }

  // Payload encoding for remote destinations happens HERE -- before the
  // channel lock and before the sequence number is committed -- so a
  // failed encode (unknown tag, null payload) cannot burn a sequence
  // number and desync the receiver's gap-free FIFO check, and the
  // serialization cost stays off the channel lock.
  std::string payload_bytes;
  if (remote != nullptr) {
    if (!wire_encoder_) {
      return Status::FailedPrecondition(
          "remote endpoint with no wire encoder installed "
          "(MessageBus::SetWireEncoder)");
    }
    auto encoded = wire_encoder_(msg.payload_tag, msg.payload);
    if (!encoded.ok()) return encoded.status();
    payload_bytes = std::move(encoded).value();
  }

  Channel* ch = nullptr;
  {
    MutexLock lk(channels_mu_);
    auto& slot = channels_[{src, dst}];
    if (!slot) slot = std::make_unique<Channel>();
    ch = slot.get();
  }

  // Delays model a slow local link; remote endpoints have a real one.
  std::uint64_t delay_us =
      (delay_fn_ && remote == nullptr) ? delay_fn_(src, dst) : 0;

  // Flow control happens BEFORE the channel lock: a blocking sender must
  // not park inside the transport while holding ch->mu, or a never_block
  // sender on the same channel would wait behind it -- exactly the wedge
  // the flag exists to prevent. The post-lock enqueue below then never
  // waits. (The pre-wait is approximate -- concurrent senders may
  // overshoot the high-water mark by a few frames -- which is fine for a
  // pacing heuristic.)
  if (remote != nullptr && !never_block) remote->WaitWritable();

  // Sequence assignment must be atomic with handing the message to the
  // delivery path, otherwise two concurrent senders could invert order on
  // the channel. For remote endpoints the transport enqueue happens under
  // the same lock, so frames enter the outbound queue in sequence order.
  MutexLock ch_lk(ch->mu);
  msg.channel_seq = ch->next_seq++;
  stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);

  if (remote != nullptr) {
    wire::FrameHeader header;
    header.tag = msg.payload_tag;
    header.src = msg.src;
    header.dst = msg.dst;
    header.channel_seq = msg.channel_seq;
    // Always a non-waiting enqueue: flow control already happened above,
    // before ch->mu was taken.
    const std::string frame = wire::EncodeFrame(header, payload_bytes);
    const std::size_t frame_bytes = frame.size();
    const Status sent = remote->SendBytes(frame, /*never_block=*/true);
    if (sent.ok()) {
      stats_.wire_frames_sent.fetch_add(1, std::memory_order_relaxed);
      stats_.wire_bytes_sent.fetch_add(frame_bytes,
                                       std::memory_order_relaxed);
      stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
    }
    return sent;
  }

  if (delay_us == 0) {
    if (!Deliver(msg, never_block)) {
      return Status::Unavailable("endpoint " + std::to_string(dst) +
                                 " is detached");
    }
    return Status::Ok();
  }

  // Bounded handler endpoints shed deferred load here: a receiver that
  // cannot keep up with the delayed stream drops new sends instead of
  // queueing them without bound (announce backpressure -- safe because a
  // dropped announce is superseded by the next one).
  if (handler_capacity > 0) {
    std::size_t count = deferred->load(std::memory_order_relaxed);
    while (true) {
      if (count >= handler_capacity) {
        stats_.handler_capacity_drops.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "handler endpoint " + std::to_string(dst) +
            " is over its deferred-delivery capacity");
      }
      if (deferred->compare_exchange_weak(count, count + 1,
                                          std::memory_order_relaxed)) {
        break;
      }
    }
  }

  // Delayed path: clamp the deadline so it never precedes an earlier
  // message on the same channel (FIFO under heterogeneous delays).
  const std::uint64_t deadline =
      std::max(NowMicros() + delay_us, ch->last_delivery_deadline_us);
  ch->last_delivery_deadline_us = deadline;
  {
    MutexLock lk(delay_mu_);
    delay_queue_.push(Delayed{deadline, delay_order_++, msg,
                              std::move(deferred)});
    delay_cv_.notify_one();
  }
  return Status::Ok();
}

bool MessageBus::Deliver(const BusMessage& msg, bool never_block) {
  std::shared_ptr<BlockingQueue<BusMessage>> inbox;
  std::function<void(const BusMessage&)> handler;
  {
    MutexLock lk(endpoints_mu_);
    if (msg.dst >= endpoints_.size()) return false;
    Endpoint& ep = *endpoints_[msg.dst];
    if (!ep.attached) return false;  // crashed server: message dropped
    inbox = ep.inbox;
    handler = ep.handler;
  }
  if (inbox) {
    // A closed inbox (stopped server) drops the message exactly like a
    // detached endpoint, and the sender must learn it -- program seeding
    // relies on a failed Send to abort instead of waiting forever on
    // accounting that can never come.
    const bool pushed =
        never_block ? inbox->ForcePush(msg) : inbox->Push(msg);
    if (!pushed) return false;
  } else if (handler) {
    handler(msg);
  }
  stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool MessageBus::TryDeliver(BusMessage& msg) {
  std::shared_ptr<BlockingQueue<BusMessage>> inbox;
  std::function<void(const BusMessage&)> handler;
  {
    MutexLock lk(endpoints_mu_);
    if (msg.dst >= endpoints_.size()) return true;  // dropped
    Endpoint& ep = *endpoints_[msg.dst];
    if (!ep.attached) return true;  // crashed server: message dropped
    inbox = ep.inbox;
    handler = ep.handler;
  }
  if (inbox) {
    if (inbox->TryPush(msg) == BlockingQueue<BusMessage>::PushResult::kFull) {
      return false;  // bounded inbox at capacity: caller parks + retries
    }
  } else if (handler) {
    handler(msg);
  }
  stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MessageBus::FlushStalled() {
  // Runs on the delay thread with delay_mu_ NOT held: stalled_ is
  // delay-thread-private, and deliveries must never run under the lock
  // (a handler may Send back onto the delayed bus).
  for (auto it = stalled_.begin(); it != stalled_.end();) {
    auto& q = it->second;
    while (!q.empty() && TryDeliver(q.front().msg)) {
      if (q.front().deferred) {
        q.front().deferred->fetch_sub(1, std::memory_order_relaxed);
      }
      q.pop_front();
    }
    it = q.empty() ? stalled_.erase(it) : std::next(it);
  }
}

void MessageBus::DelayLoop() {
  MutexLock lk(delay_mu_);
  while (true) {
    if (stopping_) return;
    if (!stalled_.empty()) {
      lk.Unlock();
      FlushStalled();
      lk.Lock();
      if (stopping_) return;
    }
    if (delay_queue_.empty() && stalled_.empty()) {
      while (!stopping_ && delay_queue_.empty()) delay_cv_.wait(lk.native());
      continue;
    }
    const std::uint64_t now = NowMicros();
    // While something is stalled, poll instead of sleeping until the next
    // deadline -- the blocked destination drains on its own schedule.
    const std::uint64_t next_deadline =
        delay_queue_.empty() ? now + 1000 : delay_queue_.top().deliver_at_us;
    if (next_deadline > now) {
      const std::uint64_t cap =
          stalled_.empty() ? next_deadline - now
                           : std::min<std::uint64_t>(next_deadline - now, 1000);
      delay_cv_.wait_for(lk.native(), std::chrono::microseconds(cap));
      continue;
    }
    Delayed d = delay_queue_.top();
    delay_queue_.pop();
    lk.Unlock();
    // Per-destination FIFO: while earlier messages to this destination
    // are parked, later ones must queue behind them. Deliveries run
    // without delay_mu_ so a handler may Send (even delayed) safely.
    auto sit = stalled_.find(d.msg.dst);
    if (sit != stalled_.end() && !sit->second.empty()) {
      sit->second.push_back(std::move(d));
    } else if (TryDeliver(d.msg)) {
      if (d.deferred) d.deferred->fetch_sub(1, std::memory_order_relaxed);
    } else {
      stalled_[d.msg.dst].push_back(std::move(d));
    }
    lk.Lock();
  }
}

std::size_t MessageBus::QueueDepth(EndpointId id) const {
  std::shared_ptr<BlockingQueue<BusMessage>> inbox;
  std::shared_ptr<std::atomic<std::size_t>> remote_depth;
  {
    MutexLock lk(endpoints_mu_);
    if (id >= endpoints_.size()) return 0;
    inbox = endpoints_[id]->inbox;
    remote_depth = endpoints_[id]->remote_depth;
  }
  if (inbox) return inbox->Size();
  // Remote endpoint: the depth its owning process last reported
  // (NoteRemoteDepth). Stale between reports -- callers treating this as
  // a backpressure signal must tolerate that (and 0 until the first
  // report arrives).
  if (remote_depth) return remote_depth->load(std::memory_order_relaxed);
  return 0;
}

void MessageBus::NoteRemoteDepth(EndpointId id, std::size_t depth) {
  std::shared_ptr<std::atomic<std::size_t>> remote_depth;
  {
    MutexLock lk(endpoints_mu_);
    if (id >= endpoints_.size()) return;
    remote_depth = endpoints_[id]->remote_depth;
  }
  if (remote_depth) remote_depth->store(depth, std::memory_order_relaxed);
}

const std::string& MessageBus::NameOf(EndpointId id) const {
  MutexLock lk(endpoints_mu_);
  static const std::string kUnknown = "?";
  if (id >= endpoints_.size()) return kUnknown;
  return endpoints_[id]->name;
}

}  // namespace weaver
