#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace weaver {
namespace obs {

std::size_t Counter::StripeIndex() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<std::size_t>(Histogram::kBucketCount)) {}

void LatencyHistogram::Record(std::uint64_t value_ns) {
  const auto idx =
      static_cast<std::size_t>(Histogram::BucketIndex(value_ns));
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_ns, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value_ns < seen &&
         !min_.compare_exchange_weak(seen, value_ns,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value_ns > seen &&
         !max_.compare_exchange_weak(seen, value_ns,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      snap.buckets.emplace_back(static_cast<std::uint32_t>(i), n);
    }
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t lo = min_.load(std::memory_order_relaxed);
  snap.min = snap.count != 0 && lo != ~0ULL ? lo : 0;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0 && other.buckets.empty()) return;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
  min = count == 0 ? other.min
                   : (other.count == 0 ? min : std::min(min, other.min));
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Mean() const {
  return count == 0
             ? 0.0
             : static_cast<double>(sum) / static_cast<double>(count);
}

std::uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (const auto& [idx, n] : buckets) {
    seen += n;
    if (static_cast<double>(seen) >= rank) {
      return Histogram::BucketUpperBound(static_cast<int>(idx));
    }
  }
  return max;
}

std::string HistogramSnapshot::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms "
                "max=%.3fms",
                static_cast<unsigned long long>(count), Mean() / 1e6,
                Percentile(50) / 1e6, Percentile(95) / 1e6,
                Percentile(99) / 1e6, static_cast<double>(max) / 1e6);
  return buf;
}

namespace {

/// In-place merge of sorted (name, value) lists with a per-collision fold.
template <typename V, typename Fold>
void MergeSorted(std::vector<std::pair<std::string, V>>* into,
                 const std::vector<std::pair<std::string, V>>& from,
                 Fold fold) {
  std::vector<std::pair<std::string, V>> merged;
  merged.reserve(into->size() + from.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < into->size() || b < from.size()) {
    if (b >= from.size() ||
        (a < into->size() && (*into)[a].first < from[b].first)) {
      merged.push_back(std::move((*into)[a++]));
    } else if (a >= into->size() || from[b].first < (*into)[a].first) {
      merged.push_back(from[b++]);
    } else {
      auto entry = std::move((*into)[a++]);
      fold(&entry.second, from[b++].second);
      merged.push_back(std::move(entry));
    }
  }
  *into = std::move(merged);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  MergeSorted(&counters, other.counters,
              [](std::uint64_t* a, std::uint64_t b) { *a += b; });
  MergeSorted(&gauges, other.gauges,
              [](std::int64_t* a, std::int64_t b) { *a += b; });
  MergeSorted(&histograms, other.histograms,
              [](HistogramSnapshot* a, const HistogramSnapshot& b) {
                a->Merge(b);
              });
}

std::uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[64];
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
    out += name;
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", v);
    out += name;
    out += buf;
  }
  for (const auto& [name, h] : histograms) {
    out += name;
    out += " ";
    out += h.Summary();
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  char buf[128];
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, v);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    std::snprintf(buf, sizeof(buf), ":%" PRId64, v);
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    std::snprintf(buf, sizeof(buf),
                  ":{\"count\":%" PRIu64
                  ",\"mean_ms\":%.6f,\"p50_ms\":%.6f,\"p95_ms\":%.6f,"
                  "\"p99_ms\":%.6f,\"max_ms\":%.6f}",
                  h.count, h.Mean() / 1e6, h.Percentile(50) / 1e6,
                  h.Percentile(95) / 1e6, h.Percentile(99) / 1e6,
                  static_cast<double>(h.max) / 1e6);
    out += buf;
  }
  out += "}}";
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lk(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lk(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lk(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

void MetricsRegistry::AddCounterFn(const std::string& name,
                                   std::function<std::uint64_t()> fn) {
  MutexLock lk(mu_);
  counter_fns_[name] = std::move(fn);
}

void MetricsRegistry::AddGaugeFn(const std::string& name,
                                 std::function<std::int64_t()> fn) {
  MutexLock lk(mu_);
  gauge_fns_[name] = std::move(fn);
}

void MetricsRegistry::DropPrefix(const std::string& prefix) {
  const auto drop = [&prefix](auto* map) {
    for (auto it = map->lower_bound(prefix); it != map->end();) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      it = map->erase(it);
    }
  };
  MutexLock lk(mu_);
  drop(&counters_);
  drop(&gauges_);
  drop(&histograms_);
  drop(&counter_fns_);
  drop(&gauge_fns_);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lk(mu_);
  snap.counters.reserve(counters_.size() + counter_fns_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, fn] : counter_fns_) {
    snap.counters.emplace_back(name, fn());
  }
  std::sort(snap.counters.begin(), snap.counters.end());
  snap.gauges.reserve(gauges_.size() + gauge_fns_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, fn] : gauge_fns_) {
    snap.gauges.emplace_back(name, fn());
  }
  std::sort(snap.gauges.begin(), snap.gauges.end());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

}  // namespace obs
}  // namespace weaver
