// Observability metrics (docs/observability.md): named counters, gauges,
// and mergeable log-bucket latency histograms, registered per process in a
// MetricsRegistry and exported as MetricsSnapshot values that merge
// associatively -- the property that lets a parent deployment fold the
// snapshots shipped by remote shard-server processes (MetricsReport,
// core/messages.h) into one cluster-wide view.
//
// Hot-path cost model: Counter::Add is one relaxed fetch_add on a
// per-thread cache-line-owned stripe (no sharing between steady-state
// writer threads); LatencyHistogram::Record is one relaxed fetch_add on a
// log bucket (same geometry as common/histogram.h) plus count/sum/min/max
// updates. Neither takes a lock. Registration and Snapshot() take the
// registry mutex and are meant for setup and scrape time only.
//
// Naming scheme: "<instance>.<metric>", where the instance prefix ends
// with a dot owned by one component ("shard0.", "gk1.", "bus.", "oracle.",
// "storage.", "coord.", "client."). Components deregister everything they
// contributed with DropPrefix("<instance>.") when they die, which is what
// makes shard recovery (KillShard/RecoverShard) re-registration safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/histogram.h"
#include "common/sync.h"

namespace weaver {
namespace obs {

/// Monotonic counter, striped across cache lines so concurrent writer
/// threads do not contend. Value() sums the stripes (racy-exact: each
/// stripe read is atomic; the sum is a moment-in-time lower bound while
/// writers run, exact once they stop).
class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    stripes_[StripeIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  /// Each thread picks a stripe once (round-robin over first touches) and
  /// keeps it for life, so steady-state increments never share a line.
  static std::size_t StripeIndex();

  Stripe stripes_[kStripes];
};

/// Point-in-time signed value (queue depths, backoff levels, live-object
/// counts).
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Sparse, plain-data image of a latency histogram: (bucket index, count)
/// pairs sorted by index, in the bucket geometry of common/histogram.h.
/// This is the unit of merging and of wire transfer (MetricsReport).
struct HistogramSnapshot {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;

  /// Associative, commutative fold: (a + b) + c == a + (b + c).
  void Merge(const HistogramSnapshot& other);

  double Mean() const;
  /// p in [0, 100]; upper bound of the bucket holding the p-th percentile.
  std::uint64_t Percentile(double p) const;
  /// One-line count/mean/p50/p95/p99/max summary in milliseconds.
  std::string Summary() const;
};

/// Thread-safe log-bucket latency histogram (same buckets as
/// common/histogram.h, but every cell is a relaxed atomic so hot paths
/// record without locks).
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(std::uint64_t value_ns);
  HistogramSnapshot Snapshot() const;

 private:
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// One process's metrics at a moment in time: sorted name -> value lists.
/// Plain data -- encodable (core/message_codec.h), mergeable, printable.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Associative fold: counters add, gauges add (cluster-wide depth is the
  /// sum of per-process depths), histograms merge bucket-wise. Names
  /// appearing on only one side are kept as-is.
  void Merge(const MetricsSnapshot& other);

  /// Lookups by exact name; 0 / nullptr when absent.
  std::uint64_t CounterValue(const std::string& name) const;
  std::int64_t GaugeValue(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  /// "name value" per line (histograms as one-line summaries).
  std::string ToText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean_ms,
  /// p50_ms,p95_ms,p99_ms,max_ms}}} -- stable key order (sorted names).
  std::string ToJson() const;
};

/// Per-process instrument registry. Owned instruments (counter / gauge /
/// histogram) are created on first use and live until DropPrefix;
/// returned pointers are stable for the instrument's lifetime, so hot
/// paths look a name up once and keep the pointer. Callback instruments
/// (AddCounterFn / AddGaugeFn) read component-owned state at snapshot
/// time -- the component must DropPrefix its names before that state
/// dies, and the callbacks must not call back into this registry
/// (Snapshot holds the registry lock while invoking them).
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  LatencyHistogram* histogram(const std::string& name);

  void AddCounterFn(const std::string& name,
                    std::function<std::uint64_t()> fn);
  void AddGaugeFn(const std::string& name, std::function<std::int64_t()> fn);

  /// Removes every instrument (owned and callback) whose name starts with
  /// `prefix`. Callers must have dropped any pointers obtained from the
  /// owned-instrument accessors for those names.
  void DropPrefix(const std::string& prefix);

  MetricsSnapshot Snapshot() const;

 private:
  mutable Mutex mu_;
  // std::map: sorted iteration gives snapshots their stable name order.
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      GUARDED_BY(mu_);
  std::map<std::string, std::function<std::uint64_t()>> counter_fns_
      GUARDED_BY(mu_);
  std::map<std::string, std::function<std::int64_t()>> gauge_fns_
      GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace weaver
