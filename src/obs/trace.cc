#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace weaver {
namespace obs {

void TraceLog::Append(const TraceSpan& span) {
  sampled_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lk(mu_);
  if (ring_.size() >= capacity_ && capacity_ > 0) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  if (capacity_ > 0) ring_.push_back(span);
}

std::vector<TraceSpan> TraceLog::Dump() const {
  MutexLock lk(mu_);
  return std::vector<TraceSpan>(ring_.begin(), ring_.end());
}

std::string TraceLog::DumpText() const {
  std::string out;
  char buf[192];
  for (const TraceSpan& s : Dump()) {
    const double order_us =
        s.ordered_ns >= s.begin_ns && s.ordered_ns != 0
            ? (s.ordered_ns - s.begin_ns) / 1e3
            : 0.0;
    const std::uint64_t applied_base =
        s.ordered_ns != 0 ? s.ordered_ns : s.begin_ns;
    const double apply_us = s.applied_ns >= applied_base && s.applied_ns != 0
                                ? (s.applied_ns - applied_base) / 1e3
                                : 0.0;
    const std::uint64_t replied_base =
        s.applied_ns != 0 ? s.applied_ns : s.begin_ns;
    const double reply_us = s.replied_ns >= replied_base && s.replied_ns != 0
                                ? (s.replied_ns - replied_base) / 1e3
                                : 0.0;
    const double total_us = s.replied_ns >= s.begin_ns && s.replied_ns != 0
                                ? (s.replied_ns - s.begin_ns) / 1e3
                                : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "%s id=%" PRIu64
                  " order=%.1fus apply=%.1fus reply=%.1fus total=%.1fus\n",
                  s.kind == TraceSpan::Kind::kCommit ? "commit" : "program",
                  s.id, order_us, apply_us, reply_us, total_us);
    out += buf;
  }
  return out;
}

}  // namespace obs
}  // namespace weaver
