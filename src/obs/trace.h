// Lightweight request tracing (docs/observability.md#tracing): a sampled
// ring buffer of per-commit / per-program spans recording the lifecycle
// timestamps the tail-latency questions need --
//
//   begin    request entered the gatekeeper / coordinator
//   ordered  a refinable timestamp was issued (commits only)
//   applied  the state change landed / the program quiesced
//   replied  the reply left for the client
//
// Sampling is a stride: SetSampleEvery(n) keeps every n-th request (0
// disables tracing entirely, the default -- ShouldSample is then one
// relaxed load on the hot path). The buffer is a bounded ring; old spans
// are dropped, counted, and Dump() returns what survived.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/sync.h"

namespace weaver {
namespace obs {

struct TraceSpan {
  enum class Kind : std::uint8_t { kCommit = 1, kProgram = 2 };
  Kind kind = Kind::kCommit;
  std::uint64_t id = 0;  // transaction / program id
  std::uint64_t begin_ns = 0;
  std::uint64_t ordered_ns = 0;  // 0 when the stage does not apply
  std::uint64_t applied_ns = 0;
  std::uint64_t replied_ns = 0;
};

class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Keep every n-th request; 0 turns tracing off.
  void SetSampleEvery(std::uint64_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  std::uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Decides (and consumes) one sampling slot: with SetSampleEvery(n),
  /// exactly every n-th call returns true (the 1st, n+1-th, ...).
  bool ShouldSample() {
    const std::uint64_t n = sample_every_.load(std::memory_order_relaxed);
    if (n == 0) return false;
    return seen_.fetch_add(1, std::memory_order_relaxed) % n == 0;
  }

  void Append(const TraceSpan& span);

  std::vector<TraceSpan> Dump() const;
  /// One line per span: kind, id, and per-stage deltas in microseconds.
  std::string DumpText() const;

  std::uint64_t sampled() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  /// Spans evicted from the ring by newer ones.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  std::atomic<std::uint64_t> sample_every_{0};
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<std::uint64_t> sampled_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable Mutex mu_;
  std::deque<TraceSpan> ring_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace weaver
