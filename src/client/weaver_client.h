// WeaverClient: session factory for a Weaver deployment.
//
// The client layer decouples request submission from execution (the
// paper's deployment model: many remote clients talk to gatekeepers over
// the network). Each OpenSession() pins the new session to a gatekeeper
// round-robin, so a bank of sessions spreads load across the gatekeeper
// bank the way the paper's client fleet does.
//
//   WeaverClient client(db.get());
//   auto session = client.OpenSession();
//   auto tx = session->BeginTx();
//   ...buffered writes...
//   auto pending = session->CommitAsync(std::move(tx));
//   ...submit more work, then...
//   const CommitResult& r = pending.Wait();
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "client/session.h"
#include "core/weaver.h"

namespace weaver {

class WeaverClient {
 public:
  /// The deployment must outlive the client and every session it opens.
  explicit WeaverClient(Weaver* db) : db_(db) {}
  WeaverClient(const WeaverClient&) = delete;
  WeaverClient& operator=(const WeaverClient&) = delete;

  /// Opens a session pinned to the next gatekeeper (round-robin).
  std::unique_ptr<Session> OpenSession();
  /// Opens a session pinned to a specific gatekeeper.
  std::unique_ptr<Session> OpenSessionOn(GatekeeperId gk);

  Weaver& db() { return *db_; }

 private:
  Weaver* db_;
  std::atomic<std::uint64_t> next_gk_{0};
  std::atomic<std::uint64_t> next_name_{0};
};

}  // namespace weaver
