// ReplyRouter: correlates reply messages with Pending<T> handles.
//
// With the transport-agnostic bus API (docs/transport.md), client
// requests are plain data: a submitter attaches a reply endpoint and a
// request id, and the gatekeeper answers with ClientCommitReply /
// ClientProgramReply messages. The router owns the request-id space of
// one reply endpoint: submissions register a Pending<T> and get an id;
// the endpoint's bus handler feeds every inbound reply to OnMessage(),
// which fulfills the matching handle. Shared by Session (its reply
// endpoint) and Weaver's blocking wrappers (the deployment-internal reply
// endpoint).
//
// Lifetime: the bus invokes handlers outside its endpoint lock, so a
// handler can still be running while the owning Session is destroyed.
// Owners therefore hold the router in a shared_ptr captured by the
// handler lambda, and FailAll() any still-registered requests when they
// detach -- a reply that arrives later finds no entry and is dropped.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "client/pending.h"
#include "common/annotations.h"
#include "common/result.h"
#include "common/sync.h"
#include "core/messages.h"
#include "core/node_program.h"
#include "core/transaction.h"

namespace weaver {

class ReplyRouter {
 public:
  /// Registers a handle and returns the request id to put in the message.
  /// Register BEFORE sending: a reply can arrive (inline) mid-Send.
  std::uint64_t RegisterCommit(Pending<CommitResult> pending) {
    MutexLock lk(mu_);
    const std::uint64_t id = next_id_++;
    commits_.emplace(id, std::move(pending));
    return id;
  }

  std::uint64_t RegisterProgram(Pending<Result<ProgramResult>> pending) {
    MutexLock lk(mu_);
    const std::uint64_t id = next_id_++;
    programs_.emplace(id, std::move(pending));
    return id;
  }

  /// Bus handler body for the owning reply endpoint: fulfills the handle
  /// a reply names. Unknown ids (already failed, or a stale reply after
  /// FailAll) are dropped.
  void OnMessage(const BusMessage& msg) {
    switch (msg.payload_tag) {
      case kMsgClientCommitReply: {
        auto reply =
            std::static_pointer_cast<ClientCommitReplyMessage>(msg.payload);
        Pending<CommitResult> pending;
        if (!TakeCommit(reply->request_id, &pending)) return;
        pending.Fulfill(CommitResult{reply->status, reply->timestamp});
        break;
      }
      case kMsgClientProgramReply: {
        auto reply =
            std::static_pointer_cast<ClientProgramReplyMessage>(msg.payload);
        Pending<Result<ProgramResult>> pending;
        if (!TakeProgram(reply->request_id, &pending)) return;
        if (reply->status.ok()) {
          pending.Fulfill(std::move(reply->result));
        } else {
          pending.Fulfill(reply->status);
        }
        break;
      }
      default:
        break;
    }
  }

  /// Fails one registered request (a Send that never reached the bus).
  void FailCommit(std::uint64_t request_id, Status status) {
    Pending<CommitResult> pending;
    if (!TakeCommit(request_id, &pending)) return;
    pending.Fulfill(CommitResult{std::move(status), {}});
  }

  void FailProgram(std::uint64_t request_id, Status status) {
    Pending<Result<ProgramResult>> pending;
    if (!TakeProgram(request_id, &pending)) return;
    pending.Fulfill(Result<ProgramResult>(std::move(status)));
  }

  /// Fails every outstanding request (owner detaching its endpoint: no
  /// reply can be delivered anymore, and Wait() must never hang).
  void FailAll(const Status& status) {
    std::unordered_map<std::uint64_t, Pending<CommitResult>> commits;
    std::unordered_map<std::uint64_t, Pending<Result<ProgramResult>>>
        programs;
    {
      MutexLock lk(mu_);
      commits.swap(commits_);
      programs.swap(programs_);
    }
    for (auto& [id, pending] : commits) {
      pending.Fulfill(CommitResult{status, {}});
    }
    for (auto& [id, pending] : programs) {
      pending.Fulfill(Result<ProgramResult>(status));
    }
  }

  std::size_t OutstandingForTest() const {
    MutexLock lk(mu_);
    return commits_.size() + programs_.size();
  }

 private:
  bool TakeCommit(std::uint64_t id, Pending<CommitResult>* out) {
    MutexLock lk(mu_);
    auto it = commits_.find(id);
    if (it == commits_.end()) return false;
    *out = std::move(it->second);
    commits_.erase(it);
    return true;
  }

  bool TakeProgram(std::uint64_t id, Pending<Result<ProgramResult>>* out) {
    MutexLock lk(mu_);
    auto it = programs_.find(id);
    if (it == programs_.end()) return false;
    *out = std::move(it->second);
    programs_.erase(it);
    return true;
  }

  mutable Mutex mu_;
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<std::uint64_t, Pending<CommitResult>> commits_
      GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, Pending<Result<ProgramResult>>>
      programs_ GUARDED_BY(mu_);
};

}  // namespace weaver
