#include "client/session.h"

#include <utility>

#include "client/weaver_client.h"
#include "core/messages.h"

namespace weaver {

Session::Session(Weaver* db, GatekeeperId gk, std::uint64_t name_hint)
    : db_(db), gk_(gk) {
  // The session's endpoint gives its requests a real source address (and
  // a FIFO channel to the gatekeeper); replies ride the in-process sink
  // callbacks, so the inbound handler has nothing to do yet. A real
  // transport would deliver responses here.
  endpoint_ = db_->bus().RegisterHandler(
      "session" + std::to_string(name_hint), [](const BusMessage&) {});
  gk_client_ep_ = db_->gatekeeper(gk_).client_endpoint();
  // Endpoint ids are unique per deployment, which makes them convenient
  // globally-unique lane keys (Weaver's internal blocking wrappers use a
  // disjoint high-bit id space).
  id_ = endpoint_;
}

Session::~Session() {
  // Detach the endpoint so the bus drops any future sends to it. (The
  // endpoint slot itself and the per-channel sequence state stay behind
  // -- the bus has no id reuse -- but they are a few bytes per session,
  // not a queue.)
  db_->bus().Detach(endpoint_);
}

Transaction Session::BeginTx() { return db_->BeginTx(); }

Pending<CommitResult> Session::SubmitCommit(Transaction tx, bool delay_paid) {
  auto pending = Pending<CommitResult>::Make();
  if (!tx.valid()) {
    pending.Fulfill(CommitResult{
        Status::FailedPrecondition("invalid or moved-from transaction"), {}});
    return pending;
  }
  if (tx.committed()) {
    pending.Fulfill(
        CommitResult{Status::Internal("transaction already committed"), {}});
    return pending;
  }
  if (!db_->started()) {
    // No ingress workers exist to serve the lane: fail fast instead of
    // parking the request forever. (Blocking Session::Commit falls back
    // to the deployment's inline path before reaching here.)
    pending.Fulfill(CommitResult{
        Status::FailedPrecondition(
            "deployment not started; Start() it before submitting async "
            "work, or use the blocking Commit()"),
        {}});
    return pending;
  }
  auto msg = std::make_shared<ClientCommitMessage>();
  msg->session_id = id_;
  msg->delay_paid = delay_paid;
  msg->tx = std::move(tx);
  msg->sink = [pending](CommitResult r) mutable {
    pending.Fulfill(std::move(r));
  };
  Status sent;
  {
    // The mutex defines the session's submission order when several
    // threads share it: sends enter the bus channel (and so the ingress
    // lane) in this critical section's order.
    std::lock_guard<std::mutex> lk(submit_mu_);
    sent = db_->bus().Send(endpoint_, gk_client_ep_, kMsgClientCommit,
                           std::move(msg));
  }
  if (!sent.ok()) pending.Fulfill(CommitResult{std::move(sent), {}});
  return pending;
}

Pending<CommitResult> Session::CommitAsync(Transaction tx) {
  return SubmitCommit(std::move(tx), /*delay_paid=*/false);
}

Pending<Result<ProgramResult>> Session::RunProgramAsync(
    std::string_view name, std::vector<NextHop> starts) {
  auto pending = Pending<Result<ProgramResult>>::Make();
  if (!db_->started()) {
    pending.Fulfill(Result<ProgramResult>(
        Status::FailedPrecondition("deployment not started")));
    return pending;
  }
  auto msg = std::make_shared<ClientProgramMessage>();
  msg->session_id = id_;
  msg->program_name = std::string(name);
  msg->starts = std::move(starts);
  msg->sink = [pending](Result<ProgramResult> r) mutable {
    pending.Fulfill(std::move(r));
  };
  // No lock: programs carry no submission-order promise, so concurrent
  // submitters need not serialize.
  const Status sent = db_->bus().Send(endpoint_, gk_client_ep_,
                                      kMsgClientProgram, std::move(msg));
  if (!sent.ok()) pending.Fulfill(Result<ProgramResult>(std::move(sent)));
  return pending;
}

Pending<Result<ProgramResult>> Session::RunProgramAsync(std::string_view name,
                                                        NodeId start,
                                                        std::string params) {
  std::vector<NextHop> starts;
  starts.push_back(NextHop{start, std::move(params)});
  return RunProgramAsync(name, std::move(starts));
}

Status Session::Commit(Transaction* tx) {
  if (tx == nullptr || !tx->valid()) {
    return Status::FailedPrecondition("invalid or moved-from transaction");
  }
  if (tx->committed()) {
    // Guard BEFORE moving: re-committing must not wipe the recorded
    // outcome of the earlier successful commit.
    return Status::Internal("transaction already committed");
  }
  if (!db_->started()) {
    // Deterministic deployments (start = false, PumpAll-driven tests,
    // bulk-load flows) have no ingress workers; the deployment's
    // blocking wrapper executes inline there.
    return db_->Commit(tx);
  }
  // A blocking client cannot overlap its backing-store round trip with
  // anything, so it pays the simulated delay on its own thread (exactly
  // what the pre-session API did) and the ingress skips it.
  db_->PayCommitDelay(tx->NumOps());
  Pending<CommitResult> pending =
      SubmitCommit(std::move(*tx), /*delay_paid=*/true);
  const CommitResult& r = pending.Wait();
  Weaver::AnnotateCommitOutcome(tx, r);
  return r.status;
}

Status Session::RunTransaction(
    const std::function<Status(Transaction&)>& body, int max_attempts) {
  return RetryTransaction([this] { return BeginTx(); },
                          [this](Transaction* tx) { return Commit(tx); },
                          body, max_attempts);
}

Result<ProgramResult> Session::RunProgram(std::string_view name,
                                          std::vector<NextHop> starts) {
  return db_->RunProgramOn(gk_, name, std::move(starts));
}

Result<ProgramResult> Session::RunProgram(std::string_view name, NodeId start,
                                          std::string params) {
  return db_->RunProgramOn(gk_, name, start, std::move(params));
}

}  // namespace weaver
