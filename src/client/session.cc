#include "client/session.h"

#include <utility>

#include "client/weaver_client.h"
#include "common/clock.h"
#include "core/messages.h"

namespace weaver {

namespace {

/// Records the end-to-end latency of a replied request, if its submission
/// stamped a start time. Requires shared->mu held.
void RecordReplyLatency(
    obs::LatencyHistogram* hist,
    std::unordered_map<std::uint64_t, std::uint64_t>* t0s,
    std::uint64_t request_id) {
  auto it = t0s->find(request_id);
  if (it == t0s->end()) return;
  if (hist != nullptr) hist->Record(NowNanos() - it->second);
  t0s->erase(it);
}

}  // namespace

Session::Session(Weaver* db, GatekeeperId gk, std::uint64_t name_hint)
    : db_(db), gk_(gk), router_(std::make_shared<ReplyRouter>()) {
  // Shared across sessions; the deployment's registry owns them, so this
  // prefix is never dropped (sessions must not outlive their Weaver).
  shared_->commit_latency = db_->metrics().histogram("client.commit_latency");
  shared_->program_latency =
      db_->metrics().histogram("client.program_latency");
  // The session's endpoint is its reply address: the gatekeeper answers
  // every request with a ClientCommitReply / ClientProgramReply message
  // here, and the router fulfills the matching Pending handle. The
  // handler also tracks the latest committed timestamp for the
  // read-your-writes fence. It captures the router by shared_ptr (not
  // `this`): the bus may still be invoking it while the session
  // destructs.
  endpoint_ = db_->bus().RegisterHandler(
      "session" + std::to_string(name_hint),
      [router = router_, shared = shared_](const BusMessage& msg) {
        if (msg.payload_tag == kMsgClientCommitReply) {
          auto reply =
              std::static_pointer_cast<ClientCommitReplyMessage>(msg.payload);
          MutexLock lk(shared->mu);
          if (reply->status.ok()) {
            // Commit replies arrive in execution (= submission) order on
            // this session's lane, so last-writer-wins is the latest
            // committed timestamp.
            shared->last_committed = reply->timestamp;
          }
          RecordReplyLatency(shared->commit_latency, &shared->commit_t0,
                             reply->request_id);
        } else if (msg.payload_tag == kMsgClientProgramReply) {
          auto reply = std::static_pointer_cast<ClientProgramReplyMessage>(
              msg.payload);
          MutexLock lk(shared->mu);
          RecordReplyLatency(shared->program_latency, &shared->program_t0,
                             reply->request_id);
        }
        router->OnMessage(msg);
      });
  gk_client_ep_ = db_->GatekeeperClientEndpoint(gk_);
  // Endpoint ids are unique per deployment, which makes them convenient
  // globally-unique lane keys (Weaver's internal blocking wrappers use a
  // disjoint high-bit id space).
  id_ = endpoint_;
  // Let the deployment fail this session's in-flight calls if the pinned
  // gatekeeper is an out-of-parent process and crashes -- the requests
  // die with it, and Wait() must see Unavailable, not hang.
  router_registration_ = db_->RegisterSessionRouter(gk_, router_);
}

Session::~Session() {
  // Detach the endpoint so the bus drops any future replies, then fail
  // whatever is still outstanding -- those replies can never arrive, and
  // Wait() must not hang. (The endpoint slot and per-channel sequence
  // state stay behind -- the bus has no id reuse -- but they are a few
  // bytes per session, not a queue.)
  db_->bus().Detach(endpoint_);
  db_->UnregisterSessionRouter(router_registration_);
  router_->FailAll(Status::Unavailable("session closed"));
}

void Session::SetReadYourWrites(bool on) {
  MutexLock lk(state_mu_);
  read_your_writes_ = on;
}

bool Session::read_your_writes() const {
  MutexLock lk(state_mu_);
  return read_your_writes_;
}

Transaction Session::BeginTx() { return db_->BeginTx(); }

Pending<CommitResult> Session::SubmitCommit(Transaction tx, bool delay_paid) {
  auto pending = Pending<CommitResult>::Make();
  if (!tx.valid()) {
    pending.Fulfill(CommitResult{
        Status::FailedPrecondition("invalid or moved-from transaction"), {}});
    return pending;
  }
  if (tx.committed()) {
    pending.Fulfill(
        CommitResult{Status::Internal("transaction already committed"), {}});
    return pending;
  }
  if (!db_->started()) {
    // No ingress workers exist to serve the lane: fail fast instead of
    // parking the request forever. (Blocking Session::Commit falls back
    // to the deployment's inline path before reaching here.)
    pending.Fulfill(CommitResult{
        Status::FailedPrecondition(
            "deployment not started; Start() it before submitting async "
            "work, or use the blocking Commit()"),
        {}});
    return pending;
  }
  auto msg = std::make_shared<ClientCommitMessage>();
  msg->session_id = id_;
  msg->reply_to = endpoint_;
  msg->delay_paid = delay_paid;
  CommitPayload payload = tx.DetachForSubmit();
  msg->ops = std::move(payload.ops);
  msg->created_placements = std::move(payload.created_placements);
  msg->read_set = std::move(payload.read_set);
  // Register BEFORE sending: the reply (or an inline rejection) can
  // arrive before Send returns.
  msg->request_id = router_->RegisterCommit(pending);
  const std::uint64_t request_id = msg->request_id;
  {
    MutexLock slk(shared_->mu);
    shared_->commit_t0[request_id] = NowNanos();
  }
  Status sent;
  {
    // The mutex defines the session's submission order when several
    // threads share it: sends enter the bus channel (and so the ingress
    // lane) in this critical section's order.
    MutexLock lk(submit_mu_);
    sent = db_->bus().Send(endpoint_, gk_client_ep_, kMsgClientCommit,
                           std::move(msg));
    if (sent.ok()) {
      MutexLock slk(state_mu_);
      last_commit_ = pending;
    }
  }
  if (!sent.ok()) {
    {
      MutexLock slk(shared_->mu);
      shared_->commit_t0.erase(request_id);
    }
    router_->FailCommit(request_id, std::move(sent));
  }
  return pending;
}

Pending<CommitResult> Session::CommitAsync(Transaction tx) {
  return SubmitCommit(std::move(tx), /*delay_paid=*/false);
}

RefinableTimestamp Session::CurrentFence() {
  Pending<CommitResult> last;
  {
    MutexLock lk(state_mu_);
    if (!read_your_writes_) return {};
    last = last_commit_;
  }
  // Wait for the most recent commit to execute: its reply (and every
  // earlier one -- the lane is FIFO and replies are sent in execution
  // order) has then recorded the fence. Cheap when already done.
  if (last.valid()) (void)last.Wait();
  MutexLock lk(shared_->mu);
  return shared_->last_committed;
}

std::vector<Pending<Result<ProgramResult>>> Session::RunProgramBatchAsync(
    std::vector<ProgramCall> calls) {
  std::vector<Pending<Result<ProgramResult>>> pendings;
  pendings.reserve(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    pendings.push_back(Pending<Result<ProgramResult>>::Make());
  }
  if (calls.empty()) return pendings;
  if (!db_->started()) {
    for (auto& p : pendings) {
      p.Fulfill(Result<ProgramResult>(
          Status::FailedPrecondition("deployment not started")));
    }
    return pendings;
  }
  const RefinableTimestamp fence = CurrentFence();
  auto msg = std::make_shared<ClientProgramMessage>();
  msg->session_id = id_;
  msg->reply_to = endpoint_;
  msg->requests.reserve(calls.size());
  std::vector<std::uint64_t> request_ids;
  request_ids.reserve(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    ProgramRequest req;
    req.request_id = router_->RegisterProgram(pendings[i]);
    req.program_name = std::move(calls[i].name);
    req.starts = std::move(calls[i].starts);
    req.fence = fence;
    request_ids.push_back(req.request_id);
    msg->requests.push_back(std::move(req));
  }
  {
    const std::uint64_t now = NowNanos();
    MutexLock slk(shared_->mu);
    for (const std::uint64_t rid : request_ids) {
      shared_->program_t0[rid] = now;
    }
  }
  // No lock: programs carry no submission-order promise, so concurrent
  // submitters need not serialize.
  const Status sent = db_->bus().Send(endpoint_, gk_client_ep_,
                                      kMsgClientProgram, std::move(msg));
  if (!sent.ok()) {
    {
      MutexLock slk(shared_->mu);
      for (const std::uint64_t rid : request_ids) {
        shared_->program_t0.erase(rid);
      }
    }
    for (const std::uint64_t rid : request_ids) {
      router_->FailProgram(rid, sent);
    }
  }
  return pendings;
}

Pending<Result<ProgramResult>> Session::RunProgramAsync(
    std::string_view name, std::vector<NextHop> starts) {
  std::vector<ProgramCall> calls;
  calls.push_back(ProgramCall{std::string(name), std::move(starts)});
  return RunProgramBatchAsync(std::move(calls)).front();
}

Pending<Result<ProgramResult>> Session::RunProgramAsync(std::string_view name,
                                                        NodeId start,
                                                        std::string params) {
  std::vector<NextHop> starts;
  starts.push_back(NextHop{start, std::move(params)});
  return RunProgramAsync(name, std::move(starts));
}

Status Session::Commit(Transaction* tx) {
  if (tx == nullptr || !tx->valid()) {
    return Status::FailedPrecondition("invalid or moved-from transaction");
  }
  if (tx->committed()) {
    // Guard BEFORE submitting: re-committing must not wipe the recorded
    // outcome of the earlier successful commit.
    return Status::Internal("transaction already committed");
  }
  if (!db_->started()) {
    // Deterministic deployments (start = false, PumpAll-driven tests,
    // bulk-load flows) have no ingress workers; the deployment's
    // blocking wrapper executes inline there.
    return db_->Commit(tx);
  }
  // A blocking client cannot overlap its backing-store round trip with
  // anything, so it pays the simulated delay on its own thread (exactly
  // what the pre-session API did) and the ingress skips it.
  db_->PayCommitDelay(tx->NumOps());
  Pending<CommitResult> pending =
      SubmitCommit(std::move(*tx), /*delay_paid=*/true);
  const CommitResult& r = pending.Wait();
  Weaver::AnnotateCommitOutcome(tx, r);
  return r.status;
}

Status Session::RunTransaction(
    const std::function<Status(Transaction&)>& body, int max_attempts) {
  return RetryTransaction([this] { return BeginTx(); },
                          [this](Transaction* tx) { return Commit(tx); },
                          body, max_attempts);
}

Result<ProgramResult> Session::RunProgram(std::string_view name,
                                          std::vector<NextHop> starts) {
  if (db_->started()) {
    // Route through the async surface so blocking callers get the same
    // fence semantics (read-your-writes) as pipelined ones.
    return RunProgramAsync(name, std::move(starts)).Take();
  }
  return db_->RunProgramOn(gk_, name, std::move(starts));
}

Result<ProgramResult> Session::RunProgram(std::string_view name, NodeId start,
                                          std::string params) {
  std::vector<NextHop> starts;
  starts.push_back(NextHop{start, std::move(params)});
  return RunProgram(name, std::move(starts));
}

}  // namespace weaver
