#include "client/weaver_client.h"

namespace weaver {

std::unique_ptr<Session> WeaverClient::OpenSession() {
  const auto gk = static_cast<GatekeeperId>(
      next_gk_.fetch_add(1, std::memory_order_relaxed) %
      db_->num_gatekeepers());
  return OpenSessionOn(gk);
}

std::unique_ptr<Session> WeaverClient::OpenSessionOn(GatekeeperId gk) {
  const std::uint64_t hint =
      next_name_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(db_, gk, hint));
}

}  // namespace weaver
