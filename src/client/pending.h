// Pending<T>: future-like handle for one in-flight session request.
//
// A session submits work to a gatekeeper as a bus message and hands the
// caller a Pending<T>; the gatekeeper's ingress worker fulfills it when
// the request executes (or when the deployment shuts down, with a non-OK
// result -- Wait() never hangs across Shutdown()). Handles are cheap to
// copy; all copies share one result slot. Unlike std::future, Wait() may
// be called repeatedly and from several threads.
#pragma once

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/annotations.h"
#include "common/status.h"
#include "common/sync.h"

namespace weaver {

template <typename T>
class Pending {
 public:
  /// An empty handle (no request attached); valid() is false. Assign a
  /// handle returned by a submission before waiting.
  Pending() = default;

  /// A fresh unfulfilled handle. The producer side keeps a copy and calls
  /// Fulfill(); consumers Wait().
  static Pending<T> Make() {
    Pending<T> p;
    p.state_ = std::make_shared<State>();
    return p;
  }

  bool valid() const { return state_ != nullptr; }

  bool ready() const {
    if (!state_) return false;
    MutexLock lk(state_->mu);
    return state_->value.has_value();
  }

  /// Producer side: installs the result and wakes every waiter. The first
  /// fulfillment wins; later calls are ignored (a request completing
  /// normally may race the shutdown drain failing it).
  void Fulfill(T value) {
    if (!state_) return;
    {
      MutexLock lk(state_->mu);
      if (state_->value.has_value()) return;
      state_->value.emplace(std::move(value));
    }
    state_->cv.notify_all();
  }

  /// Blocks until the request completes and returns its result. Repeated
  /// calls return the same result. Waiting on an empty (default-
  /// constructed) handle is a programming error.
  // The returned reference outlives the lock; that is safe by the type's
  // protocol: the slot is write-once (first Fulfill wins) and never
  // cleared, so it is immutable once observed fulfilled.
  const T& Wait() {
    assert(state_ != nullptr && "Wait() on an empty Pending handle");
    MutexLock lk(state_->mu);
    while (!state_->value.has_value()) state_->cv.wait(lk.native());
    return *state_->value;
  }

  /// Wait() with a deadline. OK once the result is installed (read it with
  /// Wait()/Take()); DeadlineExceeded when the request is still in flight
  /// after `timeout` -- the bound a client needs to keep making progress
  /// while a shard process is down. The request itself is NOT cancelled: a
  /// late fulfillment still lands and a later Wait() returns it.
  template <typename Rep, typename Period>
  Status WaitFor(std::chrono::duration<Rep, Period> timeout) {
    assert(state_ != nullptr && "WaitFor() on an empty Pending handle");
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lk(state_->mu);
    while (!state_->value.has_value()) {
      if (state_->cv.wait_until(lk.native(), deadline) ==
          std::cv_status::timeout) {
        if (state_->value.has_value()) break;  // fulfilled at the wire
        return Status::DeadlineExceeded(
            "request still in flight after timeout");
      }
    }
    return Status::Ok();
  }

  /// Wait() and move the result out (single consumer; the slot keeps the
  /// moved-from value, so only call once).
  T Take() {
    assert(state_ != nullptr && "Take() on an empty Pending handle");
    MutexLock lk(state_->mu);
    while (!state_->value.has_value()) state_->cv.wait(lk.native());
    return std::move(*state_->value);
  }

 private:
  struct State {
    Mutex mu;
    std::condition_variable cv;
    std::optional<T> value GUARDED_BY(mu);
  };

  std::shared_ptr<State> state_;
};

}  // namespace weaver
