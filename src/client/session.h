// Session: the canonical client handle onto a Weaver deployment.
//
// A session speaks to ONE gatekeeper (chosen round-robin at open) through
// ClientRequest messages on the MessageBus -- the seam a future real
// transport plugs into -- and may pipeline many requests: CommitAsync()
// and RunProgramAsync() return Pending<T> handles immediately, and the
// gatekeeper's client ingress executes a session's requests strictly in
// submission order while different sessions proceed in parallel.
//
// Ordering guarantees:
//   * per-session commits: execute (and take their timestamps) in the
//     order they were submitted on the session;
//   * programs: read consistent snapshots and carry no submission-order
//     promise -- pipelined programs run concurrently on the gatekeeper's
//     worker pool. A program that must observe an earlier CommitAsync()
//     should Wait() on it first;
//   * cross-session: no submission-order guarantee -- concurrent sessions
//     are ordered by the refinable timestamps their requests receive,
//     exactly like concurrent clients in the paper.
//
// Blocking convenience methods (Commit, RunTransaction, RunProgram) are
// thin wrappers over the async surface; a session used only through them
// behaves like the old blocking API.
//
// Thread safety: submissions may race (a mutex serializes them and
// defines the submission order), and Pending handles may be waited on
// from any thread.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "client/pending.h"
#include "common/ids.h"
#include "common/result.h"
#include "core/node_program.h"
#include "core/transaction.h"
#include "core/weaver.h"
#include "net/bus.h"

namespace weaver {

class WeaverClient;

class Session {
 public:
  ~Session();  // detaches the session's bus endpoint
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Session id (also its lane key on the gatekeeper's client ingress).
  std::uint64_t id() const { return id_; }
  /// The gatekeeper this session is pinned to.
  GatekeeperId gatekeeper() const { return gk_; }

  // --- Async (pipelined) surface -------------------------------------------

  /// Starts a buffered-write transaction (same object the blocking API
  /// hands out; reads run on the caller's thread as before).
  Transaction BeginTx();

  /// Submits the transaction for commit and returns immediately. The
  /// transaction is moved into the request; the commit timestamp comes
  /// back in the CommitResult. Commits submitted on one session are
  /// executed -- and timestamped -- in submission order.
  Pending<CommitResult> CommitAsync(Transaction tx);

  /// Submits a node program and returns immediately. Pipelined programs
  /// may execute concurrently and out of submission order (see the
  /// ordering guarantees above).
  Pending<Result<ProgramResult>> RunProgramAsync(std::string_view name,
                                                 std::vector<NextHop> starts);
  Pending<Result<ProgramResult>> RunProgramAsync(std::string_view name,
                                                 NodeId start,
                                                 std::string params = "");

  // --- Blocking conveniences (wrappers over the async surface) -------------

  /// CommitAsync(...).Wait(): blocks until the commit executes, then
  /// annotates *tx with the outcome (timestamp() and committed() keep
  /// working on the shell the move left behind). On a deployment that is
  /// not started (deterministic/bulk-load mode) this executes inline,
  /// like Weaver::Commit; the async methods instead fail fast there.
  Status Commit(Transaction* tx);

  /// Retry loop over BeginTx + body + Commit, like Weaver::RunTransaction.
  Status RunTransaction(const std::function<Status(Transaction&)>& body,
                        int max_attempts = 16);

  /// Runs a node program on this session's gatekeeper and waits.
  Result<ProgramResult> RunProgram(std::string_view name,
                                   std::vector<NextHop> starts);
  Result<ProgramResult> RunProgram(std::string_view name, NodeId start,
                                   std::string params = "");

 private:
  friend class WeaverClient;
  Session(Weaver* db, GatekeeperId gk, std::uint64_t name_hint);

  Pending<CommitResult> SubmitCommit(Transaction tx, bool delay_paid);

  Weaver* db_;
  GatekeeperId gk_;
  EndpointId endpoint_ = 0;         // this session's bus address
  EndpointId gk_client_ep_ = 0;     // the pinned gatekeeper's ingress
  std::uint64_t id_ = 0;

  /// Serializes commit submissions: the critical section's order is the
  /// session's commit submission order (programs submit lock-free).
  std::mutex submit_mu_;
};

}  // namespace weaver
