// Session: the canonical client handle onto a Weaver deployment.
//
// A session speaks to ONE gatekeeper (chosen round-robin at open) through
// ClientCommit / ClientProgram messages on the MessageBus, and receives
// the outcomes as ClientCommitReply / ClientProgramReply messages on its
// own reply endpoint -- request and response are both plain-data bus
// messages (core/messages.h), which is exactly what lets the same
// session logic run against in-process gatekeepers or across a real
// transport (docs/transport.md). A session may pipeline many requests:
// CommitAsync() and RunProgramAsync() return Pending<T> handles
// immediately, fulfilled by the reply router when the replies arrive.
//
// Ordering guarantees:
//   * per-session commits: execute (and take their timestamps) in the
//     order they were submitted on the session;
//   * programs: read consistent snapshots and carry no submission-order
//     promise -- pipelined programs run concurrently on the gatekeeper's
//     worker pool. A program that must observe an earlier CommitAsync()
//     should Wait() on it first, or turn on SetReadYourWrites(true) to
//     have the session fence programs behind its last commit
//     automatically;
//   * cross-session: no submission-order guarantee -- concurrent sessions
//     are ordered by the refinable timestamps their requests receive,
//     exactly like concurrent clients in the paper.
//
// Blocking convenience methods (Commit, RunTransaction, RunProgram) are
// thin wrappers over the async surface; a session used only through them
// behaves like the old blocking API.
//
// Thread safety: submissions may race (a mutex serializes them and
// defines the submission order), and Pending handles may be waited on
// from any thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "client/pending.h"
#include "client/reply_router.h"
#include "common/annotations.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/sync.h"
#include "core/node_program.h"
#include "core/transaction.h"
#include "core/weaver.h"
#include "net/bus.h"

namespace weaver {

class WeaverClient;

/// One node-program invocation for the batched fan-out API.
struct ProgramCall {
  std::string name;
  std::vector<NextHop> starts;
};

class Session {
 public:
  ~Session();  // detaches the reply endpoint, fails outstanding handles
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Session id (also its lane key on the gatekeeper's client ingress).
  std::uint64_t id() const { return id_; }
  /// The gatekeeper this session is pinned to.
  GatekeeperId gatekeeper() const { return gk_; }

  /// Read-your-writes mode: while enabled, every program submitted on
  /// this session is fenced behind the session's last committed
  /// timestamp -- the gatekeeper issues the program a timestamp that
  /// happens-after the commit, so its snapshot observes the write.
  /// Submission may block until the session's most recent CommitAsync()
  /// executes (its reply carries the fence). Off by default: programs
  /// run on whatever consistent snapshot their timestamp names.
  void SetReadYourWrites(bool on);
  bool read_your_writes() const;

  // --- Async (pipelined) surface -------------------------------------------

  /// Starts a buffered-write transaction (same object the blocking API
  /// hands out; reads run on the caller's thread as before).
  Transaction BeginTx();

  /// Submits the transaction for commit and returns immediately. The
  /// transaction is detached into the request (plain data; the commit
  /// timestamp comes back in the CommitResult). Commits submitted on one
  /// session are executed -- and timestamped -- in submission order.
  Pending<CommitResult> CommitAsync(Transaction tx);

  /// Submits a node program and returns immediately. Pipelined programs
  /// may execute concurrently and out of submission order (see the
  /// ordering guarantees above).
  Pending<Result<ProgramResult>> RunProgramAsync(std::string_view name,
                                                 std::vector<NextHop> starts);
  Pending<Result<ProgramResult>> RunProgramAsync(std::string_view name,
                                                 NodeId start,
                                                 std::string params = "");

  /// Batched fan-out: submits every call in ONE ClientProgram message --
  /// one bus crossing, one ingress pass -- and returns a handle per
  /// call. The requests fan out inside the gatekeeper's ingress and may
  /// run concurrently on its worker pool.
  std::vector<Pending<Result<ProgramResult>>> RunProgramBatchAsync(
      std::vector<ProgramCall> calls);

  // --- Blocking conveniences (wrappers over the async surface) -------------

  /// CommitAsync(...).Wait(): blocks until the commit executes, then
  /// annotates *tx with the outcome (timestamp() and committed() keep
  /// working on the shell the submission hollowed out). On a deployment
  /// that is not started (deterministic/bulk-load mode) this executes
  /// inline, like Weaver::Commit; the async methods instead fail fast
  /// there.
  Status Commit(Transaction* tx);

  /// Retry loop over BeginTx + body + Commit, like Weaver::RunTransaction.
  Status RunTransaction(const std::function<Status(Transaction&)>& body,
                        int max_attempts = 16);

  /// Runs a node program on this session's gatekeeper and waits.
  Result<ProgramResult> RunProgram(std::string_view name,
                                   std::vector<NextHop> starts);
  Result<ProgramResult> RunProgram(std::string_view name, NodeId start,
                                   std::string params = "");

 private:
  friend class WeaverClient;
  Session(Weaver* db, GatekeeperId gk, std::uint64_t name_hint);

  Pending<CommitResult> SubmitCommit(Transaction tx, bool delay_paid);
  /// Current read-your-writes fence: waits for the most recent commit if
  /// RYW is on (invalid timestamp otherwise / when nothing committed).
  RefinableTimestamp CurrentFence();

  Weaver* db_;
  GatekeeperId gk_;
  EndpointId endpoint_ = 0;         // this session's reply endpoint
  EndpointId gk_client_ep_ = 0;     // the pinned gatekeeper's ingress
  std::uint64_t id_ = 0;

  /// Correlates replies with Pending handles. Shared with the bus
  /// handler, which can outlive a destructing session by a beat.
  std::shared_ptr<ReplyRouter> router_;
  /// Registration in the deployment's session-router table (crash
  /// fencing: Weaver::FailSessionCalls); released in the destructor.
  std::uint64_t router_registration_ = 0;

  /// State the reply handler writes; shared for the same lifetime reason
  /// as the router (the handler must never touch `this`).
  struct SharedState {
    Mutex mu;
    RefinableTimestamp last_committed GUARDED_BY(mu);
    /// End-to-end client latency ("client.commit_latency" /
    /// "client.program_latency", shared by every session of the
    /// deployment; owned by its registry). Submission stamps a start time
    /// by request id; the reply handler records the difference. The
    /// pointers themselves are set once at session construction, before
    /// the reply endpoint exists, and never change -- no guard needed.
    obs::LatencyHistogram* commit_latency = nullptr;
    obs::LatencyHistogram* program_latency = nullptr;
    std::unordered_map<std::uint64_t, std::uint64_t> commit_t0 GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, std::uint64_t> program_t0 GUARDED_BY(mu);
  };
  std::shared_ptr<SharedState> shared_ = std::make_shared<SharedState>();

  /// Serializes commit submissions: the critical section's order is the
  /// session's commit submission order (programs submit lock-free). An
  /// ordering lock -- it guards no fields, so no GUARDED_BY points here.
  Mutex submit_mu_;

  /// Read-your-writes mode flag + the most recent commit's handle (its
  /// reply carries the fence timestamp).
  mutable Mutex state_mu_;
  bool read_your_writes_ GUARDED_BY(state_mu_) = false;
  Pending<CommitResult> last_commit_ GUARDED_BY(state_mu_);
};

}  // namespace weaver
