#include "core/message_codec.h"

#include <utility>

namespace weaver {

// --- Shared sub-codecs ------------------------------------------------------
//
// Clock and timestamp encodings are public (message_codec.h): the oracle
// service's durable changelog reuses them so a WAL record and a wire
// payload spell a timestamp identically.

void EncodeVectorClock(const VectorClock& c, wire::Writer* w) {
  w->VarU32(c.epoch());
  w->Count(c.width());
  for (std::size_t i = 0; i < c.width(); ++i) w->VarU64(c.Component(i));
}

Status DecodeVectorClock(wire::Reader* r, VectorClock* out) {
  std::uint32_t epoch = 0;
  std::size_t width = 0;
  WEAVER_RETURN_IF_ERROR(r->VarU32(&epoch));
  WEAVER_RETURN_IF_ERROR(r->Count(&width));
  std::vector<std::uint64_t> counters(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    WEAVER_RETURN_IF_ERROR(r->VarU64(&counters[i]));
  }
  *out = VectorClock(epoch, std::move(counters));
  return Status::Ok();
}

void EncodeTimestamp(const RefinableTimestamp& ts, wire::Writer* w) {
  EncodeVectorClock(ts.clock, w);
  w->VarU32(ts.gatekeeper);
  w->VarU64(ts.local_seq);
}

Status DecodeTimestamp(wire::Reader* r, RefinableTimestamp* out) {
  WEAVER_RETURN_IF_ERROR(DecodeVectorClock(r, &out->clock));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&out->gatekeeper));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&out->local_seq));
  return Status::Ok();
}

namespace {

void EncodeStatus(const Status& s, wire::Writer* w) {
  w->VarU32(static_cast<std::uint32_t>(s.code()));
  w->String(s.message());
}

Status DecodeStatus(wire::Reader* r, Status* out) {
  std::uint32_t code = 0;
  std::string message;
  WEAVER_RETURN_IF_ERROR(r->VarU32(&code));
  WEAVER_RETURN_IF_ERROR(r->String(&message));
  if (code > static_cast<std::uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("unknown status code on the wire");
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::Ok();
}

void EncodeOp(const GraphOp& op, wire::Writer* w) {
  w->U8(static_cast<std::uint8_t>(op.type));
  w->VarU64(op.node);
  w->VarU64(op.edge);
  w->VarU64(op.to);
  w->String(op.key);
  w->String(op.value);
}

Status DecodeOp(wire::Reader* r, GraphOp* op) {
  std::uint8_t type = 0;
  WEAVER_RETURN_IF_ERROR(r->U8(&type));
  if (type > static_cast<std::uint8_t>(GraphOpType::kRemoveEdgeProp)) {
    return Status::InvalidArgument("unknown graph op type on the wire");
  }
  op->type = static_cast<GraphOpType>(type);
  WEAVER_RETURN_IF_ERROR(r->VarU64(&op->node));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&op->edge));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&op->to));
  WEAVER_RETURN_IF_ERROR(r->String(&op->key));
  WEAVER_RETURN_IF_ERROR(r->String(&op->value));
  return Status::Ok();
}

void EncodeOps(const std::vector<GraphOp>& ops, wire::Writer* w) {
  w->Count(ops.size());
  for (const GraphOp& op : ops) EncodeOp(op, w);
}

Status DecodeOps(wire::Reader* r, std::vector<GraphOp>* ops) {
  std::size_t n = 0;
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  ops->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WEAVER_RETURN_IF_ERROR(DecodeOp(r, &(*ops)[i]));
  }
  return Status::Ok();
}

void EncodeHops(const std::vector<NextHop>& hops, wire::Writer* w) {
  w->Count(hops.size());
  for (const NextHop& hop : hops) {
    w->VarU64(hop.node);
    w->String(hop.params);
  }
}

Status DecodeHops(wire::Reader* r, std::vector<NextHop>* hops) {
  std::size_t n = 0;
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  hops->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WEAVER_RETURN_IF_ERROR(r->VarU64(&(*hops)[i].node));
    WEAVER_RETURN_IF_ERROR(r->String(&(*hops)[i].params));
  }
  return Status::Ok();
}

void EncodeReturns(const std::vector<std::pair<NodeId, std::string>>& rets,
                   wire::Writer* w) {
  w->Count(rets.size());
  for (const auto& [node, blob] : rets) {
    w->VarU64(node);
    w->String(blob);
  }
}

Status DecodeReturns(wire::Reader* r,
                     std::vector<std::pair<NodeId, std::string>>* rets) {
  std::size_t n = 0;
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  rets->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WEAVER_RETURN_IF_ERROR(r->VarU64(&(*rets)[i].first));
    WEAVER_RETURN_IF_ERROR(r->String(&(*rets)[i].second));
  }
  return Status::Ok();
}

}  // namespace

// --- Per-schema codecs ------------------------------------------------------

void Encode(const TxMessage& m, wire::Writer* w) {
  EncodeTimestamp(m.ts, w);
  EncodeOps(m.ops, w);
}

Status Decode(wire::Reader* r, TxMessage* m) {
  WEAVER_RETURN_IF_ERROR(DecodeTimestamp(r, &m->ts));
  return DecodeOps(r, &m->ops);
}

void Encode(const NopMessage& m, wire::Writer* w) { EncodeTimestamp(m.ts, w); }

Status Decode(wire::Reader* r, NopMessage* m) { return DecodeTimestamp(r, &m->ts); }

void Encode(const AnnounceMessage& m, wire::Writer* w) {
  EncodeVectorClock(m.clock, w);
  w->VarU32(m.from);
}

Status Decode(wire::Reader* r, AnnounceMessage* m) {
  WEAVER_RETURN_IF_ERROR(DecodeVectorClock(r, &m->clock));
  return r->VarU32(&m->from);
}

void Encode(const WaveHopBatchMessage& m, wire::Writer* w) {
  w->VarU64(m.program_id);
  EncodeTimestamp(m.ts, w);
  w->String(m.program_name);
  w->VarU32(m.coordinator);
  w->U8(m.visit_once ? 1 : 0);
  EncodeHops(m.hops, w);
}

Status Decode(wire::Reader* r, WaveHopBatchMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->program_id));
  WEAVER_RETURN_IF_ERROR(DecodeTimestamp(r, &m->ts));
  WEAVER_RETURN_IF_ERROR(r->String(&m->program_name));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->coordinator));
  std::uint8_t visit_once = 0;
  WEAVER_RETURN_IF_ERROR(r->U8(&visit_once));
  m->visit_once = visit_once != 0;
  return DecodeHops(r, &m->hops);
}

void Encode(const WaveAccountingMessage& m, wire::Writer* w) {
  w->VarU64(m.program_id);
  w->VarU32(m.shard);
  w->VarU64(m.hops_consumed);
  w->VarU64(m.hops_spawned);
  w->VarU64(m.vertices_visited);
  w->VarU64(m.cycles);
  w->VarU64(m.forwarded_batches);
  EncodeReturns(m.returns, w);
  EncodeStatus(m.error, w);
}

Status Decode(wire::Reader* r, WaveAccountingMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->program_id));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->shard));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->hops_consumed));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->hops_spawned));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->vertices_visited));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->cycles));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->forwarded_batches));
  WEAVER_RETURN_IF_ERROR(DecodeReturns(r, &m->returns));
  return DecodeStatus(r, &m->error);
}

void Encode(const EndProgramMessage& m, wire::Writer* w) {
  w->VarU64(m.program_id);
}

Status Decode(wire::Reader* r, EndProgramMessage* m) {
  return r->VarU64(&m->program_id);
}

void Encode(const GcMessage& m, wire::Writer* w) {
  EncodeTimestamp(m.watermark, w);
}

Status Decode(wire::Reader* r, GcMessage* m) {
  return DecodeTimestamp(r, &m->watermark);
}

void Encode(const ClientCommitMessage& m, wire::Writer* w) {
  w->VarU64(m.session_id);
  w->VarU64(m.request_id);
  w->VarU32(m.reply_to);
  w->U8(m.delay_paid ? 1 : 0);
  EncodeOps(m.ops, w);
  w->Count(m.created_placements.size());
  for (const auto& [node, shard] : m.created_placements) {
    w->VarU64(node);
    w->VarU32(shard);
  }
  w->Count(m.read_set.size());
  for (const auto& [key, version] : m.read_set) {
    w->String(key);
    w->VarU64(version);
  }
}

Status Decode(wire::Reader* r, ClientCommitMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->session_id));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->request_id));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->reply_to));
  std::uint8_t delay_paid = 0;
  WEAVER_RETURN_IF_ERROR(r->U8(&delay_paid));
  m->delay_paid = delay_paid != 0;
  WEAVER_RETURN_IF_ERROR(DecodeOps(r, &m->ops));
  std::size_t n = 0;
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  m->created_placements.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WEAVER_RETURN_IF_ERROR(r->VarU64(&m->created_placements[i].first));
    WEAVER_RETURN_IF_ERROR(r->VarU32(&m->created_placements[i].second));
  }
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  m->read_set.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WEAVER_RETURN_IF_ERROR(r->String(&m->read_set[i].first));
    WEAVER_RETURN_IF_ERROR(r->VarU64(&m->read_set[i].second));
  }
  return Status::Ok();
}

void Encode(const ClientProgramMessage& m, wire::Writer* w) {
  w->VarU64(m.session_id);
  w->VarU32(m.reply_to);
  w->Count(m.requests.size());
  for (const ProgramRequest& req : m.requests) {
    w->VarU64(req.request_id);
    w->String(req.program_name);
    EncodeHops(req.starts, w);
    EncodeTimestamp(req.fence, w);
  }
}

Status Decode(wire::Reader* r, ClientProgramMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->session_id));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->reply_to));
  std::size_t n = 0;
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  m->requests.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ProgramRequest& req = m->requests[i];
    WEAVER_RETURN_IF_ERROR(r->VarU64(&req.request_id));
    WEAVER_RETURN_IF_ERROR(r->String(&req.program_name));
    WEAVER_RETURN_IF_ERROR(DecodeHops(r, &req.starts));
    WEAVER_RETURN_IF_ERROR(DecodeTimestamp(r, &req.fence));
  }
  return Status::Ok();
}

void Encode(const ClientCommitReplyMessage& m, wire::Writer* w) {
  w->VarU64(m.session_id);
  w->VarU64(m.request_id);
  EncodeStatus(m.status, w);
  EncodeTimestamp(m.timestamp, w);
}

Status Decode(wire::Reader* r, ClientCommitReplyMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->session_id));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->request_id));
  WEAVER_RETURN_IF_ERROR(DecodeStatus(r, &m->status));
  return DecodeTimestamp(r, &m->timestamp);
}

void Encode(const ClientProgramReplyMessage& m, wire::Writer* w) {
  w->VarU64(m.session_id);
  w->VarU64(m.request_id);
  EncodeStatus(m.status, w);
  EncodeReturns(m.result.returns, w);
  w->VarU64(m.result.vertices_visited);
  w->VarU64(m.result.waves);
  w->VarU64(m.result.hops);
  w->VarU64(m.result.forwarded_batches);
  w->VarU64(m.result.coordinator_msgs);
  EncodeTimestamp(m.result.timestamp, w);
}

Status Decode(wire::Reader* r, ClientProgramReplyMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->session_id));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->request_id));
  WEAVER_RETURN_IF_ERROR(DecodeStatus(r, &m->status));
  WEAVER_RETURN_IF_ERROR(DecodeReturns(r, &m->result.returns));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->result.vertices_visited));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->result.waves));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->result.hops));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->result.forwarded_batches));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->result.coordinator_msgs));
  return DecodeTimestamp(r, &m->result.timestamp);
}

void Encode(const MetricsRequestMessage& m, wire::Writer* w) {
  w->VarU64(m.request_id);
  w->VarU32(m.reply_to);
}

Status Decode(wire::Reader* r, MetricsRequestMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->request_id));
  return r->VarU32(&m->reply_to);
}

void Encode(const MetricsReportMessage& m, wire::Writer* w) {
  w->VarU64(m.request_id);
  w->VarU32(m.shard);
  w->VarU64(m.inbox_depth);
  const obs::MetricsSnapshot& s = m.snapshot;
  w->Count(s.counters.size());
  for (const auto& [name, v] : s.counters) {
    w->String(name);
    w->VarU64(v);
  }
  w->Count(s.gauges.size());
  for (const auto& [name, v] : s.gauges) {
    w->String(name);
    // Two's-complement cast: negatives take the full 10 varint bytes,
    // but gauges are near-zero signed values in practice.
    w->VarU64(static_cast<std::uint64_t>(v));
  }
  w->Count(s.histograms.size());
  for (const auto& [name, h] : s.histograms) {
    w->String(name);
    w->Count(h.buckets.size());
    for (const auto& [idx, n] : h.buckets) {
      w->VarU32(idx);
      w->VarU64(n);
    }
    w->VarU64(h.count);
    w->VarU64(h.sum);
    w->VarU64(h.min);
    w->VarU64(h.max);
  }
}

Status Decode(wire::Reader* r, MetricsReportMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->request_id));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->shard));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->inbox_depth));
  obs::MetricsSnapshot& s = m->snapshot;
  std::size_t n = 0;
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  s.counters.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WEAVER_RETURN_IF_ERROR(r->String(&s.counters[i].first));
    WEAVER_RETURN_IF_ERROR(r->VarU64(&s.counters[i].second));
  }
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  s.gauges.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WEAVER_RETURN_IF_ERROR(r->String(&s.gauges[i].first));
    std::uint64_t raw = 0;
    WEAVER_RETURN_IF_ERROR(r->VarU64(&raw));
    s.gauges[i].second = static_cast<std::int64_t>(raw);
  }
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  s.histograms.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    obs::HistogramSnapshot& h = s.histograms[i].second;
    WEAVER_RETURN_IF_ERROR(r->String(&s.histograms[i].first));
    std::size_t buckets = 0;
    WEAVER_RETURN_IF_ERROR(r->Count(&buckets));
    h.buckets.resize(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
      WEAVER_RETURN_IF_ERROR(r->VarU32(&h.buckets[b].first));
      WEAVER_RETURN_IF_ERROR(r->VarU64(&h.buckets[b].second));
    }
    WEAVER_RETURN_IF_ERROR(r->VarU64(&h.count));
    WEAVER_RETURN_IF_ERROR(r->VarU64(&h.sum));
    WEAVER_RETURN_IF_ERROR(r->VarU64(&h.min));
    WEAVER_RETURN_IF_ERROR(r->VarU64(&h.max));
  }
  return Status::Ok();
}

void Encode(const ShardResetMessage& m, wire::Writer* w) {
  w->VarU32(m.target);
  w->VarU64(m.token);
  w->VarU32(m.reply_to);
}

Status Decode(wire::Reader* r, ShardResetMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->target));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->token));
  return r->VarU32(&m->reply_to);
}

void Encode(const ShardResetAckMessage& m, wire::Writer* w) {
  w->VarU32(m.shard);
  w->VarU64(m.token);
}

Status Decode(wire::Reader* r, ShardResetAckMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->shard));
  return r->VarU64(&m->token);
}

void Encode(const PartitionReplayMessage& m, wire::Writer* w) {
  w->VarU32(m.shard);
  EncodeReturns(m.vertices, w);
}

Status Decode(wire::Reader* r, PartitionReplayMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->shard));
  return DecodeReturns(r, &m->vertices);
}

void Encode(const OracleRequestMessage& m, wire::Writer* w) {
  w->VarU64(m.request_id);
  w->VarU32(m.reply_to);
  w->Count(m.ops.size());
  for (const OracleOp& op : m.ops) {
    w->U8(op.type);
    EncodeTimestamp(op.a, w);
    EncodeTimestamp(op.b, w);
    w->U8(op.prefer);
    EncodeVectorClock(op.watermark, w);
  }
}

Status Decode(wire::Reader* r, OracleRequestMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->request_id));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->reply_to));
  std::size_t n = 0;
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  m->ops.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    OracleOp& op = m->ops[i];
    WEAVER_RETURN_IF_ERROR(r->U8(&op.type));
    if (op.type > OracleOp::kSync) {
      return Status::InvalidArgument("unknown oracle op type on the wire");
    }
    WEAVER_RETURN_IF_ERROR(DecodeTimestamp(r, &op.a));
    WEAVER_RETURN_IF_ERROR(DecodeTimestamp(r, &op.b));
    WEAVER_RETURN_IF_ERROR(r->U8(&op.prefer));
    if (op.prefer > 1) {
      return Status::InvalidArgument("oracle op preference out of range");
    }
    WEAVER_RETURN_IF_ERROR(DecodeVectorClock(r, &op.watermark));
  }
  return Status::Ok();
}

void Encode(const OracleReplyMessage& m, wire::Writer* w) {
  w->VarU64(m.request_id);
  EncodeStatus(m.status, w);
  w->Count(m.decisions.size());
  for (const OracleDecision& d : m.decisions) {
    w->U8(d.order);
    EncodeStatus(d.status, w);
  }
  w->Count(m.edges.size());
  for (const auto& [before, after] : m.edges) {
    EncodeTimestamp(before, w);
    EncodeTimestamp(after, w);
  }
}

Status Decode(wire::Reader* r, OracleReplyMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->request_id));
  WEAVER_RETURN_IF_ERROR(DecodeStatus(r, &m->status));
  std::size_t n = 0;
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  m->decisions.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    OracleDecision& d = m->decisions[i];
    WEAVER_RETURN_IF_ERROR(r->U8(&d.order));
    if (d.order > static_cast<std::uint8_t>(ClockOrder::kConcurrent)) {
      return Status::InvalidArgument("oracle decision order out of range");
    }
    WEAVER_RETURN_IF_ERROR(DecodeStatus(r, &d.status));
  }
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  m->edges.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WEAVER_RETURN_IF_ERROR(DecodeTimestamp(r, &m->edges[i].first));
    WEAVER_RETURN_IF_ERROR(DecodeTimestamp(r, &m->edges[i].second));
  }
  return Status::Ok();
}

namespace {

Status DecodeRole(wire::Reader* r, NodeRole* out) {
  std::uint8_t role = 0;
  WEAVER_RETURN_IF_ERROR(r->U8(&role));
  if (role > static_cast<std::uint8_t>(NodeRole::kSpare)) {
    return Status::InvalidArgument("unknown node role on the wire");
  }
  *out = static_cast<NodeRole>(role);
  return Status::Ok();
}

}  // namespace

void Encode(const JoinRequestMessage& m, wire::Writer* w) {
  w->VarU32(m.codec_version);
  w->VarU32(m.cluster_epoch);
  w->U8(static_cast<std::uint8_t>(m.role));
  w->VarU32(m.shard_id);
  w->String(m.token);
  w->VarU64(m.pid);
}

Status Decode(wire::Reader* r, JoinRequestMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->codec_version));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->cluster_epoch));
  WEAVER_RETURN_IF_ERROR(DecodeRole(r, &m->role));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->shard_id));
  WEAVER_RETURN_IF_ERROR(r->String(&m->token));
  return r->VarU64(&m->pid);
}

void Encode(const JoinAckMessage& m, wire::Writer* w) {
  EncodeStatus(m.status, w);
  w->VarU32(m.codec_version);
  w->VarU32(m.cluster_epoch);
}

Status Decode(wire::Reader* r, JoinAckMessage* m) {
  WEAVER_RETURN_IF_ERROR(DecodeStatus(r, &m->status));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->codec_version));
  return r->VarU32(&m->cluster_epoch);
}

void Encode(const RoleAssignMessage& m, wire::Writer* w) {
  w->U8(static_cast<std::uint8_t>(m.role));
  w->VarU32(m.shard_id);
  w->VarU32(m.cluster_epoch);
  w->U8(m.rehydrate ? 1 : 0);
  w->VarU32(m.num_shards);
  w->VarU32(m.num_gatekeepers);
  w->VarU64(m.inbox_capacity);
  w->VarU64(m.queue_high_water);
  w->VarU64(m.max_hops_per_cycle);
  w->U8(m.remote_oracle ? 1 : 0);
  w->U8(m.remote_gatekeepers ? 1 : 0);
  w->VarU64(m.oracle_rpc_timeout_micros);
  w->VarU64(m.oracle_total_deadline_micros);
  w->String(m.oracle_data_dir);
  w->VarU64(m.oracle_snapshot_every);
  w->U8(m.oracle_fsync);
  w->VarU64(m.tau_micros);
  w->VarU64(m.nop_period_micros);
  w->VarU64(m.client_workers);
  w->VarU64(m.client_batch);
  w->VarU64(m.client_lane_capacity);
  w->VarU64(m.max_inflight_programs);
  w->VarU64(m.nop_high_water);
  w->VarU64(m.announce_capacity);
}

Status Decode(wire::Reader* r, RoleAssignMessage* m) {
  WEAVER_RETURN_IF_ERROR(DecodeRole(r, &m->role));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->shard_id));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->cluster_epoch));
  std::uint8_t flag = 0;
  WEAVER_RETURN_IF_ERROR(r->U8(&flag));
  m->rehydrate = flag != 0;
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->num_shards));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->num_gatekeepers));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->inbox_capacity));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->queue_high_water));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->max_hops_per_cycle));
  WEAVER_RETURN_IF_ERROR(r->U8(&flag));
  m->remote_oracle = flag != 0;
  WEAVER_RETURN_IF_ERROR(r->U8(&flag));
  m->remote_gatekeepers = flag != 0;
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->oracle_rpc_timeout_micros));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->oracle_total_deadline_micros));
  WEAVER_RETURN_IF_ERROR(r->String(&m->oracle_data_dir));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->oracle_snapshot_every));
  WEAVER_RETURN_IF_ERROR(r->U8(&m->oracle_fsync));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->tau_micros));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->nop_period_micros));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->client_workers));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->client_batch));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->client_lane_capacity));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->max_inflight_programs));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->nop_high_water));
  return r->VarU64(&m->announce_capacity);
}

void Encode(const StoreCommitMessage& m, wire::Writer* w) {
  w->VarU32(m.gatekeeper);
  w->VarU64(m.request_id);
  EncodeTimestamp(m.ts, w);
  w->U8(m.pay_delay ? 1 : 0);
  EncodeOps(m.ops, w);
  w->Count(m.created_placements.size());
  for (const auto& [node, shard] : m.created_placements) {
    w->VarU64(node);
    w->VarU32(shard);
  }
  w->Count(m.read_set.size());
  for (const auto& [key, version] : m.read_set) {
    w->String(key);
    w->VarU64(version);
  }
}

Status Decode(wire::Reader* r, StoreCommitMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->gatekeeper));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->request_id));
  WEAVER_RETURN_IF_ERROR(DecodeTimestamp(r, &m->ts));
  std::uint8_t pay_delay = 0;
  WEAVER_RETURN_IF_ERROR(r->U8(&pay_delay));
  m->pay_delay = pay_delay != 0;
  WEAVER_RETURN_IF_ERROR(DecodeOps(r, &m->ops));
  std::size_t n = 0;
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  m->created_placements.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WEAVER_RETURN_IF_ERROR(r->VarU64(&m->created_placements[i].first));
    WEAVER_RETURN_IF_ERROR(r->VarU32(&m->created_placements[i].second));
  }
  WEAVER_RETURN_IF_ERROR(r->Count(&n));
  m->read_set.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    WEAVER_RETURN_IF_ERROR(r->String(&m->read_set[i].first));
    WEAVER_RETURN_IF_ERROR(r->VarU64(&m->read_set[i].second));
  }
  return Status::Ok();
}

void Encode(const StoreCommitReplyMessage& m, wire::Writer* w) {
  w->VarU32(m.gatekeeper);
  w->VarU64(m.request_id);
  EncodeStatus(m.status, w);
  w->U8(m.retry_timestamp ? 1 : 0);
  w->U8(m.kv_conflict ? 1 : 0);
  EncodeVectorClock(m.conflict_clock, w);
}

Status Decode(wire::Reader* r, StoreCommitReplyMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->gatekeeper));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->request_id));
  WEAVER_RETURN_IF_ERROR(DecodeStatus(r, &m->status));
  std::uint8_t flag = 0;
  WEAVER_RETURN_IF_ERROR(r->U8(&flag));
  m->retry_timestamp = flag != 0;
  WEAVER_RETURN_IF_ERROR(r->U8(&flag));
  m->kv_conflict = flag != 0;
  return DecodeVectorClock(r, &m->conflict_clock);
}

void Encode(const GkProgramStartMessage& m, wire::Writer* w) {
  w->VarU32(m.gatekeeper);
  w->VarU32(m.reply_to);
  w->VarU64(m.session_id);
  w->VarU64(m.request_id);
  EncodeTimestamp(m.ts, w);
  w->String(m.program_name);
  EncodeHops(m.starts, w);
}

Status Decode(wire::Reader* r, GkProgramStartMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->gatekeeper));
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->reply_to));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->session_id));
  WEAVER_RETURN_IF_ERROR(r->VarU64(&m->request_id));
  WEAVER_RETURN_IF_ERROR(DecodeTimestamp(r, &m->ts));
  WEAVER_RETURN_IF_ERROR(r->String(&m->program_name));
  return DecodeHops(r, &m->starts);
}

void Encode(const GkEpochAdvanceMessage& m, wire::Writer* w) {
  w->VarU32(m.epoch);
}

Status Decode(wire::Reader* r, GkEpochAdvanceMessage* m) {
  return r->VarU32(&m->epoch);
}

void Encode(const GkWatermarkMessage& m, wire::Writer* w) {
  w->VarU32(m.gatekeeper);
  EncodeTimestamp(m.oldest_active, w);
}

Status Decode(wire::Reader* r, GkWatermarkMessage* m) {
  WEAVER_RETURN_IF_ERROR(r->VarU32(&m->gatekeeper));
  return DecodeTimestamp(r, &m->oldest_active);
}

// --- Type-erased payload codec ----------------------------------------------

namespace {

template <typename M>
std::string EncodeAs(const std::shared_ptr<void>& payload) {
  wire::Writer w;
  Encode(*std::static_pointer_cast<M>(payload), &w);
  return w.Take();
}

template <typename M>
Result<std::shared_ptr<void>> DecodeAs(std::string_view bytes) {
  wire::Reader r(bytes);
  auto msg = std::make_shared<M>();
  WEAVER_RETURN_IF_ERROR(Decode(&r, msg.get()));
  return std::shared_ptr<void>(std::move(msg));
}

}  // namespace

Result<std::string> EncodePayload(std::uint32_t tag,
                                  const std::shared_ptr<void>& payload) {
  if (tag == kMsgStop) return std::string();  // no schema: empty payload
  if (payload == nullptr) {
    return Status::InvalidArgument("null payload for tag " +
                                   std::to_string(tag));
  }
  switch (tag) {
    case kMsgTx:
      return EncodeAs<TxMessage>(payload);
    case kMsgNop:
      return EncodeAs<NopMessage>(payload);
    case kMsgAnnounce:
      return EncodeAs<AnnounceMessage>(payload);
    case kMsgWaveHops:
      return EncodeAs<WaveHopBatchMessage>(payload);
    case kMsgWaveAccounting:
      return EncodeAs<WaveAccountingMessage>(payload);
    case kMsgEndProgram:
      return EncodeAs<EndProgramMessage>(payload);
    case kMsgGc:
      return EncodeAs<GcMessage>(payload);
    case kMsgClientCommit:
      return EncodeAs<ClientCommitMessage>(payload);
    case kMsgClientProgram:
      return EncodeAs<ClientProgramMessage>(payload);
    case kMsgClientCommitReply:
      return EncodeAs<ClientCommitReplyMessage>(payload);
    case kMsgClientProgramReply:
      return EncodeAs<ClientProgramReplyMessage>(payload);
    case kMsgMetricsRequest:
      return EncodeAs<MetricsRequestMessage>(payload);
    case kMsgMetricsReport:
      return EncodeAs<MetricsReportMessage>(payload);
    case kMsgShardReset:
      return EncodeAs<ShardResetMessage>(payload);
    case kMsgShardResetAck:
      return EncodeAs<ShardResetAckMessage>(payload);
    case kMsgPartitionReplay:
      return EncodeAs<PartitionReplayMessage>(payload);
    case kMsgOracleRequest:
      return EncodeAs<OracleRequestMessage>(payload);
    case kMsgOracleReply:
      return EncodeAs<OracleReplyMessage>(payload);
    case kMsgJoinRequest:
      return EncodeAs<JoinRequestMessage>(payload);
    case kMsgJoinAck:
      return EncodeAs<JoinAckMessage>(payload);
    case kMsgRoleAssign:
      return EncodeAs<RoleAssignMessage>(payload);
    case kMsgStoreCommit:
      return EncodeAs<StoreCommitMessage>(payload);
    case kMsgStoreCommitReply:
      return EncodeAs<StoreCommitReplyMessage>(payload);
    case kMsgGkProgramStart:
      return EncodeAs<GkProgramStartMessage>(payload);
    case kMsgGkEpochAdvance:
      return EncodeAs<GkEpochAdvanceMessage>(payload);
    case kMsgGkWatermark:
      return EncodeAs<GkWatermarkMessage>(payload);
    default:
      return Status::InvalidArgument("no wire codec for message tag " +
                                     std::to_string(tag));
  }
}

Result<std::shared_ptr<void>> DecodePayload(std::uint32_t tag,
                                            std::string_view bytes) {
  switch (tag) {
    case kMsgStop:
      return std::shared_ptr<void>();  // no schema
    case kMsgTx:
      return DecodeAs<TxMessage>(bytes);
    case kMsgNop:
      return DecodeAs<NopMessage>(bytes);
    case kMsgAnnounce:
      return DecodeAs<AnnounceMessage>(bytes);
    case kMsgWaveHops:
      return DecodeAs<WaveHopBatchMessage>(bytes);
    case kMsgWaveAccounting:
      return DecodeAs<WaveAccountingMessage>(bytes);
    case kMsgEndProgram:
      return DecodeAs<EndProgramMessage>(bytes);
    case kMsgGc:
      return DecodeAs<GcMessage>(bytes);
    case kMsgClientCommit:
      return DecodeAs<ClientCommitMessage>(bytes);
    case kMsgClientProgram:
      return DecodeAs<ClientProgramMessage>(bytes);
    case kMsgClientCommitReply:
      return DecodeAs<ClientCommitReplyMessage>(bytes);
    case kMsgClientProgramReply:
      return DecodeAs<ClientProgramReplyMessage>(bytes);
    case kMsgMetricsRequest:
      return DecodeAs<MetricsRequestMessage>(bytes);
    case kMsgMetricsReport:
      return DecodeAs<MetricsReportMessage>(bytes);
    case kMsgShardReset:
      return DecodeAs<ShardResetMessage>(bytes);
    case kMsgShardResetAck:
      return DecodeAs<ShardResetAckMessage>(bytes);
    case kMsgPartitionReplay:
      return DecodeAs<PartitionReplayMessage>(bytes);
    case kMsgOracleRequest:
      return DecodeAs<OracleRequestMessage>(bytes);
    case kMsgOracleReply:
      return DecodeAs<OracleReplyMessage>(bytes);
    case kMsgJoinRequest:
      return DecodeAs<JoinRequestMessage>(bytes);
    case kMsgJoinAck:
      return DecodeAs<JoinAckMessage>(bytes);
    case kMsgRoleAssign:
      return DecodeAs<RoleAssignMessage>(bytes);
    case kMsgStoreCommit:
      return DecodeAs<StoreCommitMessage>(bytes);
    case kMsgStoreCommitReply:
      return DecodeAs<StoreCommitReplyMessage>(bytes);
    case kMsgGkProgramStart:
      return DecodeAs<GkProgramStartMessage>(bytes);
    case kMsgGkEpochAdvance:
      return DecodeAs<GkEpochAdvanceMessage>(bytes);
    case kMsgGkWatermark:
      return DecodeAs<GkWatermarkMessage>(bytes);
    default:
      return Status::InvalidArgument("no wire codec for message tag " +
                                     std::to_string(tag));
  }
}

Result<std::string> EncodeBusMessage(const BusMessage& msg) {
  auto payload = EncodePayload(msg.payload_tag, msg.payload);
  if (!payload.ok()) return payload.status();
  wire::FrameHeader header;
  header.tag = msg.payload_tag;
  header.src = msg.src;
  header.dst = msg.dst;
  header.channel_seq = msg.channel_seq;
  return wire::EncodeFrame(header, *payload);
}

Result<BusMessage> DecodeBusMessage(const wire::FrameHeader& header,
                                    std::string_view payload) {
  auto decoded = DecodePayload(header.tag, payload);
  if (!decoded.ok()) return decoded.status();
  BusMessage msg;
  msg.src = header.src;
  msg.dst = header.dst;
  msg.channel_seq = header.channel_seq;
  msg.payload_tag = header.tag;
  msg.payload = std::move(decoded).value();
  return msg;
}

bool WireNeverBlock(std::uint32_t tag) {
  // Program/control traffic must not stall a wire receiver thread on a
  // bounded inbox: hop batches and accounting keep the same never-block
  // contract their in-process senders use (two full peers must not
  // deadlock), and EndProgram/GC/Stop are small control messages whose
  // delay would hold the whole link's FIFO stream behind a full inbox.
  // Metrics traffic is likewise background control-plane: a scrape must
  // never wedge behind a congested shard inbox.
  switch (tag) {
    case kMsgWaveHops:
    case kMsgWaveAccounting:
    case kMsgEndProgram:
    case kMsgGc:
    case kMsgStop:
    case kMsgMetricsRequest:
    case kMsgMetricsReport:
    // Recovery control traffic: the reset/replay round runs while parts
    // of the cluster are wedged by definition -- it must never block.
    case kMsgShardReset:
    case kMsgShardResetAck:
    case kMsgPartitionReplay:
    // Oracle RPCs: requests land in the service's inline handler and
    // replies in the requester's inline client handler -- neither may
    // stall the hub's forwarding thread behind a bounded inbox, and a
    // blocked reply would deadlock the very caller waiting on it.
    case kMsgOracleRequest:
    case kMsgOracleReply:
    // Out-of-parent gatekeeper traffic: StoreCommit lands in the parent
    // agent's inline handler (which enqueues to a worker pool),
    // GkProgramStart likewise; the replies land in the child gatekeeper's
    // inline control handler where a block would deadlock the very
    // attempt waiting on them. Epoch/watermark are small control-plane
    // messages sent during recovery and from timer threads.
    case kMsgStoreCommit:
    case kMsgStoreCommitReply:
    case kMsgGkProgramStart:
    case kMsgGkEpochAdvance:
    case kMsgGkWatermark:
      return true;
    default:
      return false;
  }
}

}  // namespace weaver
