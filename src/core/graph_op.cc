#include "core/graph_op.h"

namespace weaver {

Status ApplyGraphOpToNode(Node* node, const GraphOp& op,
                          const RefinableTimestamp& ts) {
  switch (op.type) {
    case GraphOpType::kCreateNode:
      return Status::Internal("kCreateNode creates the object; see callers");
    case GraphOpType::kDeleteNode:
      if (node->deleted.valid()) {
        return Status::FailedPrecondition("node already deleted");
      }
      node->deleted = ts;
      node->last_update = ts;
      return Status::Ok();
    case GraphOpType::kCreateEdge: {
      if (node->deleted.valid()) {
        return Status::FailedPrecondition("source node deleted");
      }
      auto [it, inserted] = node->out_edges.try_emplace(op.edge);
      if (!inserted) {
        return Status::AlreadyExists("edge " + std::to_string(op.edge));
      }
      Edge& e = it->second;
      e.id = op.edge;
      e.from = op.node;
      e.to = op.to;
      e.created = ts;
      node->last_update = ts;
      return Status::Ok();
    }
    case GraphOpType::kDeleteEdge: {
      auto it = node->out_edges.find(op.edge);
      if (it == node->out_edges.end()) {
        return Status::NotFound("edge " + std::to_string(op.edge));
      }
      if (it->second.deleted.valid()) {
        return Status::FailedPrecondition("edge already deleted");
      }
      it->second.deleted = ts;
      node->last_update = ts;
      return Status::Ok();
    }
    case GraphOpType::kAssignNodeProp:
      node->props.Assign(op.key, op.value, ts);
      node->last_update = ts;
      return Status::Ok();
    case GraphOpType::kRemoveNodeProp:
      if (!node->props.Remove(op.key, ts)) {
        return Status::NotFound("property " + op.key);
      }
      node->last_update = ts;
      return Status::Ok();
    case GraphOpType::kAssignEdgeProp: {
      auto it = node->out_edges.find(op.edge);
      if (it == node->out_edges.end()) {
        return Status::NotFound("edge " + std::to_string(op.edge));
      }
      it->second.props.Assign(op.key, op.value, ts);
      node->last_update = ts;
      return Status::Ok();
    }
    case GraphOpType::kRemoveEdgeProp: {
      auto it = node->out_edges.find(op.edge);
      if (it == node->out_edges.end()) {
        return Status::NotFound("edge " + std::to_string(op.edge));
      }
      if (!it->second.props.Remove(op.key, ts)) {
        return Status::NotFound("property " + op.key);
      }
      node->last_update = ts;
      return Status::Ok();
    }
  }
  return Status::Internal("unknown op type");
}

Status ApplyGraphOpToStore(GraphStore* store, const GraphOp& op,
                           const RefinableTimestamp& ts) {
  switch (op.type) {
    case GraphOpType::kCreateNode:
      return store->CreateNode(op.node, ts);
    case GraphOpType::kDeleteNode:
      return store->DeleteNode(op.node, ts);
    case GraphOpType::kCreateEdge:
      return store->CreateEdge(op.edge, op.node, op.to, ts);
    case GraphOpType::kDeleteEdge:
      return store->DeleteEdge(op.node, op.edge, ts);
    case GraphOpType::kAssignNodeProp:
      return store->AssignNodeProperty(op.node, op.key, op.value, ts);
    case GraphOpType::kRemoveNodeProp:
      return store->RemoveNodeProperty(op.node, op.key, ts);
    case GraphOpType::kAssignEdgeProp:
      return store->AssignEdgeProperty(op.node, op.edge, op.key, op.value,
                                       ts);
    case GraphOpType::kRemoveEdgeProp:
      return store->RemoveEdgeProperty(op.node, op.edge, op.key, ts);
  }
  return Status::Internal("unknown op type");
}

const char* GraphOpTypeName(GraphOpType t) {
  switch (t) {
    case GraphOpType::kCreateNode:
      return "create_node";
    case GraphOpType::kDeleteNode:
      return "delete_node";
    case GraphOpType::kCreateEdge:
      return "create_edge";
    case GraphOpType::kDeleteEdge:
      return "delete_edge";
    case GraphOpType::kAssignNodeProp:
      return "assign_node_prop";
    case GraphOpType::kRemoveNodeProp:
      return "remove_node_prop";
    case GraphOpType::kAssignEdgeProp:
      return "assign_edge_prop";
    case GraphOpType::kRemoveEdgeProp:
      return "remove_edge_prop";
  }
  return "?";
}

}  // namespace weaver
