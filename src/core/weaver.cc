#include "core/weaver.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "client/pending.h"
#include "common/clock.h"
#include "common/serde.h"
#include "coord/serverd.h"
#include "coord/supervisor.h"
#include "core/message_codec.h"
#include "net/transport.h"

namespace weaver {

std::unique_ptr<Weaver> Weaver::Open(const WeaverOptions& options) {
  WeaverOptions o = options;
  o.num_gatekeepers = std::max<std::size_t>(1, o.num_gatekeepers);
  o.num_shards = std::max<std::size_t>(1, o.num_shards);
  if (!o.remote_shard_fds.empty() &&
      o.remote_shard_fds.size() != o.num_shards) {
    std::fprintf(stderr,
                 "weaver: remote_shard_fds (%zu) must match num_shards "
                 "(%zu)\n",
                 o.remote_shard_fds.size(), o.num_shards);
    return nullptr;
  }
  if (o.oracle_service.enabled && o.remote_shard_fds.empty()) {
    std::fprintf(stderr,
                 "weaver: oracle_service requires remote shards; ignoring\n");
    o.oracle_service.enabled = false;
  }
  auto db = std::unique_ptr<Weaver>(new Weaver(o));
  if (!db->storage_status_.ok()) {
    std::fprintf(stderr, "weaver: cannot open durable storage at %s: %s\n",
                 o.storage.data_dir.c_str(),
                 db->storage_status_.ToString().c_str());
    return nullptr;
  }
  if (o.start) db->Start();
  return db;
}

Weaver::Weaver(const WeaverOptions& options) : options_(options) {
  bus_ = std::make_unique<MessageBus>();
  // From here on every endpoint registration exports its depth gauge, and
  // the bus's own counters are scrapeable (docs/observability.md).
  bus_->SetMetrics(&metrics_);
  trace_.SetSampleEvery(options_.trace_sample_every);
  if (options_.storage.enabled()) {
    auto kv = KvStore::Open(options_.kv_stripes, options_.storage);
    if (kv.ok()) {
      kv_ = std::move(kv).value();
    } else {
      storage_status_ = kv.status();
      kv_ = std::make_unique<KvStore>(options_.kv_stripes);
    }
  } else {
    kv_ = std::make_unique<KvStore>(options_.kv_stripes);
  }
  // Restore the persisted cluster epoch before any gatekeeper exists; a
  // deployment that recovered committed data additionally bumps it, so
  // every timestamp the rebooted gatekeepers issue orders after every
  // timestamp stamped onto the recovered writes (vector clocks restart at
  // zero, but a newer epoch wins every comparison).
  const bool recovered_data =
      kv_->durable() && (kv_->recovery_stats().checkpoint_rows +
                         kv_->recovery_stats().wal_ops) > 0;
  if (kv_->durable()) {
    storage::StorageEngine* engine = kv_->storage_engine();
    std::uint32_t epoch = engine->recovered_epoch();
    if (recovered_data) ++epoch;
    if (epoch > 0) {
      cluster_.RestoreEpoch(epoch);
      (void)engine->PersistEpoch(epoch);
    }
    cluster_.SetEpochPersist(
        [engine](std::uint32_t e) { return engine->PersistEpoch(e); });
  }
  programs_ = ProgramRegistry::WithStandardPrograms();
  locator_ = std::make_unique<NodeLocator>(kv_.get(), options_.num_shards);
  remote_shards_ = !options_.remote_shard_fds.empty();
  remote_gatekeepers_ = !options_.remote_gatekeeper_fds.empty();
  if (remote_gatekeepers_ &&
      (!remote_shards_ ||
       options_.remote_gatekeeper_fds.size() != options_.num_gatekeepers)) {
    // Half-wired gatekeeper banks cannot be recovered into a sane
    // deployment; fail at boot, loudly, like layout drift.
    std::fprintf(stderr,
                 "weaver: remote_gatekeeper_fds needs remote shards and one "
                 "fd per gatekeeper\n");
    std::abort();
  }
  if (remote_shards_ && options_.use_ldg_partitioner) {
    // Remote shard servers route forwarded hops with the deterministic
    // hash directory (they hold no placement state); LDG placements would
    // diverge from it, so remote deployments force hash placement.
    std::fprintf(stderr,
                 "weaver: remote shards require hash placement; ignoring "
                 "use_ldg_partitioner\n");
    options_.use_ldg_partitioner = false;
  }
  if (options_.use_ldg_partitioner) {
    partitioner_ = std::make_unique<LdgPartitioner>(
        options_.num_shards, options_.expected_vertices);
  } else {
    partitioner_ = std::make_unique<HashPartitioner>(options_.num_shards);
  }

  // Boot shards first so gatekeepers can learn their endpoints. A remote
  // deployment (docs/transport.md) registers transport-backed proxy
  // endpoints in the same id positions instead -- the endpoint layout is
  // the contract shard-server processes mirror (coord/serverd.h).
  if (remote_shards_) bus_->SetWireEncoder(EncodePayload);
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    if (remote_shards_) {
      auto transport = std::shared_ptr<Transport>(
          SocketTransport::Adopt(options_.remote_shard_fds[s]));
      if (options_.shard_transport_decorator) {
        // Fault-injection seam (net/fault_injector.h): every outbound
        // shard transport -- original or respawned -- passes through it.
        transport = options_.shard_transport_decorator(
            std::move(transport), static_cast<ShardId>(s));
      }
      const EndpointId ep =
          bus_->RegisterRemote("shard" + std::to_string(s), transport);
      remote_shard_transports_.push_back(std::move(transport));
      shards_.push_back(nullptr);
      shard_endpoints_.push_back(ep);
    } else {
      Shard::Options so;
      so.id = static_cast<ShardId>(s);
      so.num_gatekeepers = options_.num_gatekeepers;
      so.bus = bus_.get();
      so.oracle = &oracle_;
      so.programs = programs_;
      so.locator = locator_.get();
      so.inbox_capacity = options_.shard_inbox_capacity;
      so.queue_high_water = options_.shard_queue_high_water;
      so.max_hops_per_cycle = options_.shard_max_hops_per_cycle;
      so.metrics = &metrics_;
      shards_.push_back(std::make_unique<Shard>(so));
    }
    cluster_.Register("shard" + std::to_string(s), ServerKind::kShard,
                      static_cast<std::uint32_t>(s));
  }

  if (!remote_shards_) {
    for (const auto& s : shards_) shard_endpoints_.push_back(s->endpoint());
    // Peer table for shard-to-shard hop forwarding (endpoint ids are
    // stable across shard recovery, so this wiring survives failures).
    for (auto& s : shards_) s->SetShardEndpoints(shard_endpoints_);
  }
  const std::vector<EndpointId>& shard_eps = shard_endpoints_;

  for (std::size_t g = 0; g < options_.num_gatekeepers; ++g) {
    if (remote_gatekeepers_) {
      // Out-of-parent gatekeeper (docs/transport.md#cluster-bootstrap):
      // the process behind this fd owns the clock, timers, and client
      // ingress; its two layout ids become remote proxies here, in the
      // same positions the in-process construction order would assign.
      auto transport = std::shared_ptr<Transport>(
          SocketTransport::Adopt(options_.remote_gatekeeper_fds[g]));
      gk_server_endpoints_.push_back(
          bus_->RegisterRemote("gk" + std::to_string(g), transport));
      gk_client_endpoints_.push_back(bus_->RegisterRemote(
          "gk" + std::to_string(g) + ".client", transport));
      remote_gatekeeper_transports_.push_back(std::move(transport));
    } else {
      Gatekeeper::Options go;
      go.id = static_cast<GatekeeperId>(g);
      go.num_gatekeepers = options_.num_gatekeepers;
      go.bus = bus_.get();
      go.shard_endpoints = shard_eps;
      go.tau_micros = options_.tau_micros;
      go.nop_period_micros = options_.nop_period_micros;
      go.initial_epoch = cluster_.current_epoch();
      go.client_workers = options_.client_ingress_workers;
      go.client_batch = options_.client_ingress_batch;
      go.client_lane_capacity = options_.client_lane_capacity;
      go.max_inflight_programs = options_.client_max_inflight_programs;
      go.nop_high_water = options_.nop_high_water;
      go.announce_capacity = options_.announce_capacity;
      go.metrics = &metrics_;
      go.trace = &trace_;
      gatekeepers_.push_back(std::make_unique<Gatekeeper>(std::move(go)));
    }
    cluster_.Register("gk" + std::to_string(g), ServerKind::kGatekeeper,
                      static_cast<std::uint32_t>(g));
  }
  // Wire up the peer lists now that all endpoints exist.
  // (Options were moved; rebuild peer endpoint lists via a second pass.)
  // Gatekeeper reads peers only in PumpAnnounce, so mutate before Start().
  for (std::size_t g = 0; g < gatekeepers_.size(); ++g) {
    std::vector<EndpointId> peers;
    for (std::size_t h = 0; h < gatekeepers_.size(); ++h) {
      if (h != g) peers.push_back(gatekeepers_[h]->endpoint());
    }
    gatekeepers_[g]->SetPeerEndpoints(std::move(peers));
  }

  // Program coordinator: an inline-handler endpoint, so shard-side
  // accounting deltas merge synchronously on the reporting shard's
  // thread (which is also what makes spawn-before-consume registration
  // causal; see WaveAccountingMessage).
  coordinator_endpoint_ = bus_->RegisterHandler(
      "coordinator", [this](const BusMessage& msg) {
        if (msg.payload_tag == kMsgWaveAccounting) {
          OnWaveAccounting(
              std::static_pointer_cast<WaveAccountingMessage>(msg.payload));
        } else if (msg.payload_tag == kMsgMetricsReport) {
          // Remote shard-server processes can only address endpoints that
          // existed when they booted, so metrics replies share the
          // coordinator endpoint rather than a dedicated one.
          OnMetricsReport(
              std::static_pointer_cast<MetricsReportMessage>(msg.payload));
        } else if (msg.payload_tag == kMsgShardResetAck) {
          // Recovery control traffic rides the coordinator endpoint for
          // the same addressability reason.
          if (supervisor_) {
            supervisor_->OnResetAck(
                *std::static_pointer_cast<ShardResetAckMessage>(msg.payload));
          }
        }
      });
  // weaver-oracled wiring (docs/oracle_service.md): the service's remote
  // endpoint and the per-process reply endpoints come right after the
  // coordinator, extending the serverd layout contract. Each shard's
  // reply endpoint is a remote over that SHARD's transport, so an
  // OracleReply frame arriving on the oracle link is hub-forwarded to
  // the owning shard process verbatim (and shard requests arriving on
  // shard links forward to the oracle transport the same way).
  remote_oracle_ = remote_shards_ && options_.oracle_service.enabled;
  if (remote_oracle_) {
    oracle_transport_ = std::shared_ptr<Transport>(
        SocketTransport::Adopt(options_.oracle_service.fd));
    oracle_endpoint_ = bus_->RegisterRemote("oracled", oracle_transport_);
    for (std::size_t s = 0; s < options_.num_shards; ++s) {
      oracle_client_endpoints_.push_back(bus_->RegisterRemote(
          "shard" + std::to_string(s) + ".oracle-client",
          remote_shard_transports_[s]));
    }
    parent_oracle_client_endpoint_ = bus_->RegisterHandler(
        "weaver.oracle-client", [this](const BusMessage& msg) {
          if (msg.payload_tag != kMsgOracleReply ||
              oracle_client_ == nullptr) {
            return;
          }
          oracle_client_->OnReply(
              *std::static_pointer_cast<OracleReplyMessage>(msg.payload));
        });
    cluster_.Register("oracled", ServerKind::kShard,
                      static_cast<std::uint32_t>(options_.num_shards));
  }
  // The parent's oracle handle: everything this process asks of the
  // timeline (GC collects; any future ordering need) goes through it, so
  // both modes share one code path.
  {
    OracleClient::Options co;
    if (remote_oracle_) {
      co.bus = bus_.get();
      co.self = parent_oracle_client_endpoint_;
      co.service = oracle_endpoint_;
      co.rpc_timeout_micros = options_.oracle_service.rpc_timeout_micros;
      co.total_deadline_micros =
          options_.oracle_service.total_deadline_micros;
    } else {
      co.local = &oracle_;
    }
    oracle_client_ = std::make_unique<OracleClient>(co);
  }
  // Out-of-parent gatekeeper blocks extend the layout past the oracle
  // ids: one parent-side agent endpoint per gatekeeper (StoreCommit /
  // GkProgramStart / GkWatermark ingress -- an inline handler that only
  // enqueues to the agent pool, so link receive threads never sleep on
  // store work), then one remote proxy per gatekeeper control endpoint.
  if (remote_gatekeepers_) {
    for (std::size_t g = 0; g < options_.num_gatekeepers; ++g) {
      gk_agent_endpoints_.push_back(bus_->RegisterHandler(
          "gk" + std::to_string(g) + ".agent", [this](const BusMessage& msg) {
            if (msg.payload_tag == kMsgStoreCommit) {
              auto m =
                  std::static_pointer_cast<StoreCommitMessage>(msg.payload);
              EnqueueAgentWork(
                  [this, m = std::move(m)] { HandleStoreCommit(m); });
            } else if (msg.payload_tag == kMsgGkProgramStart) {
              auto m =
                  std::static_pointer_cast<GkProgramStartMessage>(msg.payload);
              EnqueueAgentWork(
                  [this, m = std::move(m)] { HandleGkProgramStart(m); });
            } else if (msg.payload_tag == kMsgGkWatermark) {
              auto m =
                  std::static_pointer_cast<GkWatermarkMessage>(msg.payload);
              MutexLock lk(gk_wm_mu_);
              if (m->gatekeeper < gk_watermarks_.size()) {
                gk_watermarks_[m->gatekeeper] = m->oldest_active;
              }
            }
          }));
    }
    for (std::size_t g = 0; g < options_.num_gatekeepers; ++g) {
      gk_control_endpoints_.push_back(
          bus_->RegisterRemote("gk" + std::to_string(g) + ".control",
                               remote_gatekeeper_transports_[g]));
    }
    {
      MutexLock lk(gk_wm_mu_);
      gk_watermarks_.resize(options_.num_gatekeepers);
    }
  }
  // Remote deployments share this endpoint layout with their shard
  // server processes -- ids are the addressing contract on the wire, so
  // drift must fail at boot, loudly (a plain abort, not assert: release
  // builds must not misroute silently). The contract has ONE definition
  // (serverd::EndpointLayout); this only compares against it.
  if (remote_shards_) {
    const auto layout = serverd::EndpointLayout::Compute(
        options_.num_shards, options_.num_gatekeepers, remote_oracle_,
        remote_gatekeepers_);
    bool ok = coordinator_endpoint_ == layout.coordinator;
    for (std::size_t g = 0; ok && g < gatekeepers_.size(); ++g) {
      ok = gatekeepers_[g]->endpoint() == layout.gatekeepers[g] &&
           gatekeepers_[g]->client_endpoint() == layout.gatekeeper_clients[g];
    }
    for (std::size_t g = 0; ok && remote_gatekeepers_ &&
                            g < options_.num_gatekeepers;
         ++g) {
      ok = gk_server_endpoints_[g] == layout.gatekeepers[g] &&
           gk_client_endpoints_[g] == layout.gatekeeper_clients[g] &&
           gk_agent_endpoints_[g] == layout.gk_agents[g] &&
           gk_control_endpoints_[g] == layout.gk_controls[g];
    }
    for (std::size_t s = 0; ok && s < shard_endpoints_.size(); ++s) {
      ok = shard_endpoints_[s] == layout.shards[s];
    }
    if (remote_oracle_) {
      ok = ok && oracle_endpoint_ == layout.oracle &&
           parent_oracle_client_endpoint_ == layout.parent_oracle_client;
      for (std::size_t s = 0; ok && s < oracle_client_endpoints_.size();
           ++s) {
        ok = oracle_client_endpoints_[s] == layout.oracle_clients[s];
      }
    }
    if (!ok) {
      std::fprintf(stderr,
                   "weaver: endpoint layout drifted from serverd contract "
                   "(coordinator at %u, want %u)\n",
                   coordinator_endpoint_, layout.coordinator);
      std::abort();
    }
  }

  // Coordinator / oracle / storage instruments. The oracle and storage
  // engine are plain members (no DropPrefix of their own); their callback
  // instruments die with this object, after every snapshotter has.
  coord_programs_completed_ = metrics_.counter("coord.programs_completed");
  coord_programs_aborted_ = metrics_.counter("coord.programs_aborted");
  coord_program_hops_ = metrics_.counter("coord.program_hops");
  coord_accounting_msgs_ = metrics_.counter("coord.accounting_msgs");
  coord_program_latency_ = metrics_.histogram("coord.program_latency");
  {
    // In-process mode these read the authoritative oracle; with
    // weaver-oracled they read the parent's replica (the service exports
    // the authoritative oracle.* series itself, tagged
    // kOracleMetricsSource).
    const TimelineOracle::Stats& os = oracle_client_->view().stats();
    const auto counter = [&](const char* name,
                             const std::atomic<std::uint64_t>& v) {
      metrics_.AddCounterFn(std::string("oracle.") + name, [&v] {
        return v.load(std::memory_order_relaxed);
      });
    };
    counter("order_requests", os.order_requests);
    counter("queries", os.queries);
    counter("edges_established", os.edges_established);
    counter("vclock_resolved", os.vclock_resolved);
    counter("dag_resolved", os.dag_resolved);
    counter("events_collected", os.events_collected);
    // GC lag: events still live in the dependency DAG (grows between
    // CollectBefore rounds; quadratic ordering cost if it runs away).
    metrics_.AddGaugeFn("oracle.live_events", [this] {
      return static_cast<std::int64_t>(oracle_client_->view().LiveEvents());
    });
    if (remote_oracle_) {
      const OracleClient::Stats& cs = oracle_client_->stats();
      counter("client.local_hits", cs.local_hits);
      counter("client.rpcs", cs.rpcs);
      counter("client.retries", cs.retries);
      counter("client.unavailable", cs.unavailable);
      counter("client.sync_edges_applied", cs.sync_edges_applied);
    }
  }
  if (kv_->durable()) kv_->storage_engine()->SetMetrics(&metrics_);

  // Reply endpoint for the deployment-internal blocking wrappers: they
  // speak the same request/reply messages a session does.
  internal_replies_ = std::make_shared<ReplyRouter>();
  internal_reply_endpoint_ = bus_->RegisterHandler(
      "weaver.replies",
      [router = internal_replies_](const BusMessage& msg) {
        router->OnMessage(msg);
      });

  // Client ingress execution: the gatekeeper owns the lanes and workers,
  // the deployment owns the state a request needs (locator/partitioner
  // for commits, the program coordinator for programs). Requests are
  // plain data; executors answer with reply messages to the endpoint the
  // request names.
  Gatekeeper::ClientExecutor client_exec;
  client_exec.commit = [this](Gatekeeper& gk, ClientCommitMessage& req,
                              bool pay_delay) {
    if (pay_delay) PayCommitDelay(req.ops.size());
    Transaction tx = RehydrateCommit(req);
    const Status st = CommitOnGatekeeper(&tx, gk);
    gk.SendCommitReply(req.reply_to, req.session_id, req.request_id, st,
                       tx.timestamp());
  };
  client_exec.program = [this](Gatekeeper& gk,
                               const ClientProgramMessage& msg,
                               ProgramRequest& req) {
    // Fully asynchronous: the worker seeds the start wave and moves on;
    // completion (a shard's final accounting delta) sends the reply and
    // releases the gatekeeper's in-flight program slot.
    Gatekeeper* gkp = &gk;
    RunProgramAsyncOn(
        gk.id(), req.program_name, std::move(req.starts), req.fence,
        [gkp, reply_to = msg.reply_to, session_id = msg.session_id,
         request_id = req.request_id](Result<ProgramResult> r) mutable {
          gkp->SendProgramReply(reply_to, session_id, request_id,
                                std::move(r));
          gkp->OnProgramSettled();
        });
  };
  for (auto& g : gatekeepers_) g->SetClientExecutor(client_exec);

  bulk_dirty_.resize(options_.num_shards);

  if (recovered_data) RestoreFromBackingStore();

  // Shard-process supervision (docs/fault_tolerance.md): built before
  // the links so their on_down hooks have somewhere to point. The down
  // bitmap exists whenever supervision does -- ShardAlive consults it.
  if (remote_shards_ && options_.supervision.enabled) {
    remote_down_.reset(new std::atomic<bool>[options_.num_shards]);
    for (std::size_t s = 0; s < options_.num_shards; ++s) {
      remote_down_[s].store(false, std::memory_order_relaxed);
    }
    supervisor_ = std::make_unique<ShardSupervisor>(this);
  } else if (options_.supervision.enabled) {
    std::fprintf(stderr,
                 "weaver: supervision requires remote shards; ignoring\n");
  }

  // The agent pool must exist before any link can deliver a StoreCommit
  // into its queue.
  if (remote_gatekeepers_) {
    const std::size_t workers = std::max<std::size_t>(
        2, options_.client_ingress_workers * options_.num_gatekeepers);
    agent_workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      agent_workers_.emplace_back([this] { AgentWorkerLoop(); });
    }
  }

  // Wire links come up last, once every local endpoint a frame could
  // address exists. Each link drains one shard socket: decoded local
  // deliveries (accounting to the coordinator) and verbatim hub
  // forwarding for shard-to-shard hop batches.
  for (std::size_t s = 0; s < remote_shard_transports_.size(); ++s) {
    WireLink::Options lo;
    lo.bus = bus_.get();
    lo.transport = remote_shard_transports_[s];
    lo.decode = DecodePayload;
    lo.never_block = WireNeverBlock;
    lo.name = "shard" + std::to_string(s) + ".link";
    if (supervisor_) {
      lo.on_down = [this, s](const Status&) {
        supervisor_->OnLinkDown(static_cast<ShardId>(s));
      };
    }
    links_.push_back(std::make_unique<WireLink>(std::move(lo)));
  }
  if (remote_oracle_) {
    WireLink::Options lo;
    lo.bus = bus_.get();
    lo.transport = oracle_transport_;
    lo.decode = DecodePayload;
    lo.never_block = WireNeverBlock;
    lo.name = "oracled.link";
    if (supervisor_) {
      lo.on_down = [this](const Status&) { supervisor_->OnOracleLinkDown(); };
    }
    oracle_link_ = std::make_unique<WireLink>(std::move(lo));
  }
  // One inbound link per gatekeeper process: decoded local deliveries
  // (agent RPCs, session replies) plus verbatim hub forwarding for the
  // traffic a gatekeeper originates toward other children (commit
  // slices and NOPs to shards, announces to peer gatekeepers).
  for (std::size_t g = 0; g < remote_gatekeeper_transports_.size(); ++g) {
    WireLink::Options lo;
    lo.bus = bus_.get();
    lo.transport = remote_gatekeeper_transports_[g];
    lo.decode = DecodePayload;
    lo.never_block = WireNeverBlock;
    lo.name = "gk" + std::to_string(g) + ".link";
    if (supervisor_) {
      lo.on_down = [this, g](const Status&) {
        supervisor_->OnGatekeeperLinkDown(static_cast<GatekeeperId>(g));
      };
    }
    gatekeeper_links_.push_back(std::make_unique<WireLink>(std::move(lo)));
  }
}

void Weaver::EnqueueAgentWork(std::function<void()> work) {
  MutexLock lk(agent_mu_);
  if (agent_stop_) return;
  agent_queue_.push_back(std::move(work));
  agent_cv_.notify_one();
}

void Weaver::AgentWorkerLoop() {
  for (;;) {
    std::function<void()> work;
    {
      MutexLock lk(agent_mu_);
      while (!agent_stop_ && agent_queue_.empty()) {
        agent_cv_.wait(lk.native());
      }
      if (agent_stop_ && agent_queue_.empty()) return;
      work = std::move(agent_queue_.front());
      agent_queue_.pop_front();
    }
    work();
  }
}

void Weaver::StopAgentPool() {
  {
    MutexLock lk(agent_mu_);
    if (agent_stop_) return;
    agent_stop_ = true;
    // Queued applies never ran: their gatekeeper processes are being
    // shut down too, so dropping them strands no waiter past their RPC
    // timeout -- and the ingress over there fails queued requests first.
    agent_queue_.clear();
    agent_cv_.notify_all();
  }
  for (auto& w : agent_workers_) {
    if (w.joinable()) w.join();
  }
  agent_workers_.clear();
}

void Weaver::HandleStoreCommit(std::shared_ptr<StoreCommitMessage> m) {
  ApplyOutcome out;
  if (m->gatekeeper >= gk_control_endpoints_.size()) return;
  {
    // Shared side of the recovery gate, exactly like CommitOnGatekeeper:
    // a partition replay must not interleave with store applies.
    ReaderLock recovery_gate(commit_gate_);
    if (m->pay_delay) PayCommitDelay(m->ops.size());
    std::unordered_map<NodeId, ShardId> placements;
    for (const auto& [node, shard] : m->created_placements) {
      placements[node] = shard;
    }
    bool resolved = true;
    for (const GraphOp& op : m->ops) {
      if (placements.count(op.node)) continue;
      auto shard = locator_->Lookup(op.node);
      if (!shard.has_value()) {
        out.status =
            Status::NotFound("unknown vertex " + std::to_string(op.node));
        resolved = false;
        break;
      }
      placements[op.node] = *shard;
    }
    if (resolved) {
      KvTransaction kvtx = kv_->Resume(m->read_set);
      out = ApplyCommitToStore(&kvtx, m->ts, m->ops, placements);
      if (out.status.ok()) {
        for (const auto& [node, shard] : m->created_placements) {
          locator_->Record(node, shard);
        }
        if (options_.enable_program_cache) {
          for (const GraphOp& op : m->ops) {
            program_cache_.InvalidateNode(op.node);
          }
        }
      }
    }
  }
  auto reply = std::make_shared<StoreCommitReplyMessage>();
  reply->gatekeeper = m->gatekeeper;
  reply->request_id = m->request_id;
  reply->status = out.status;
  reply->retry_timestamp = out.retry_timestamp;
  reply->kv_conflict = out.kv_conflict;
  reply->conflict_clock = std::move(out.conflict_clock);
  (void)bus_->Send(gk_agent_endpoints_[m->gatekeeper],
                   gk_control_endpoints_[m->gatekeeper], kMsgStoreCommitReply,
                   std::move(reply));
}

void Weaver::HandleGkProgramStart(std::shared_ptr<GkProgramStartMessage> m) {
  const GatekeeperId g = m->gatekeeper;
  if (g >= gk_control_endpoints_.size()) return;
  const auto finish = [this, g, session_id = m->session_id,
                       request_id = m->request_id](Result<ProgramResult> r) {
    auto reply = std::make_shared<ClientProgramReplyMessage>();
    reply->session_id = session_id;
    reply->request_id = request_id;
    reply->status = r.status();
    if (r.ok()) reply->result = std::move(r).value();
    // Routed through the gatekeeper process's control endpoint, not the
    // session: the clock owner must retire the in-flight entry before
    // the requester sees the reply.
    (void)bus_->Send(gk_agent_endpoints_[g], gk_control_endpoints_[g],
                     kMsgClientProgramReply, std::move(reply));
  };
  if (programs_->Find(m->program_name) == nullptr) {
    finish(Status::NotFound("no node program named " + m->program_name));
    return;
  }
  ExecuteProgramAsync(m->program_name, std::move(m->starts), m->ts,
                      /*gk=*/nullptr, finish);
}

Transaction Weaver::RehydrateCommit(ClientCommitMessage& msg) {
  Transaction tx(this, kv_->Resume(msg.read_set));
  tx.ops_ = std::move(msg.ops);
  for (const auto& [node, shard] : msg.created_placements) {
    tx.created_placements_[node] = shard;
  }
  return tx;
}

void Weaver::RestoreFromBackingStore() {
  NodeId max_node = 0;
  EdgeId max_edge = 0;
  for (const auto& [key, value] :
       kv_->ScanPrefix(kv_keys::kVertexShardMapPrefix)) {
    const NodeId node_id = std::strtoull(
        key.substr(kv_keys::kVertexShardMapPrefix.size()).c_str(), nullptr,
        10);
    const ShardId owner =
        static_cast<ShardId>(std::strtoul(value.c_str(), nullptr, 10));
    // Skip shrunk redeployments and remote shards (a shard-server
    // process recovers its own partition).
    if (owner >= shards_.size() || !shards_[owner]) continue;
    auto blob = kv_->Get(kv_keys::VertexData(node_id));
    if (!blob.ok()) continue;
    auto node = GraphStore::DeserializeNode(*blob);
    if (!node.ok()) continue;
    max_node = std::max(max_node, node_id);
    for (const auto& [eid, _] : node->out_edges) {
      max_edge = std::max(max_edge, eid);
    }
    shards_[owner]->graph().InstallNode(std::move(node).value());
    locator_->Record(node_id, owner);
    ++recovered_vertices_;
  }
  // Id allocators resume past everything recovered, so new CreateNode /
  // CreateEdge calls cannot collide with pre-crash ids.
  if (max_node > 0) ReserveNodeId(max_node);
  std::uint64_t expected = next_edge_id_.load(std::memory_order_relaxed);
  while (expected <= max_edge &&
         !next_edge_id_.compare_exchange_weak(expected, max_edge + 1,
                                              std::memory_order_relaxed)) {
  }
}

Weaver::~Weaver() { Shutdown(); }

void Weaver::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  for (auto& s : shards_) {
    if (s) s->Start();  // remote shards run their own event loops
  }
  for (auto& g : gatekeepers_) {
    g->StartTimers();
    g->StartClientIngress();
  }
  if (supervisor_) supervisor_->Start();
  if (options_.gc_period_micros > 0 && !gc_thread_.joinable()) {
    stop_gc_ = false;
    gc_thread_ = std::thread([this] {
      // Oracle events are the growth that hurts (ordering requests slow
      // down with DAG size), so they are collected every tick; the
      // O(graph) shard sweep runs every 64th tick.
      std::uint64_t tick = 0;
      MutexLock lk(gc_mu_);
      while (!stop_gc_) {
        gc_cv_.wait_for(lk.native(),
                        std::chrono::microseconds(options_.gc_period_micros));
        if (stop_gc_) return;
        lk.Unlock();
        RunGarbageCollection(/*include_shards=*/(++tick % 64) == 0);
        MaybePollRemoteMetrics();
        lk.Lock();
      }
    });
  }
}

void Weaver::Shutdown() {
  // The supervisor goes first: once shutdown starts tearing links down,
  // every peer EOF would read as a crash and the monitor would burn the
  // spare pool respawning shards we are about to stop.
  if (supervisor_) supervisor_->Stop();
  // Stop the client ingress next, while started_ is still true and the
  // shards still drain: requests already on a worker finish normally
  // (their waves, slices, and RunProgramOn's started_ check all need the
  // deployment up) and queued ones fail with Unavailable, so no
  // Pending<T>::Wait() hangs.
  for (auto& g : gatekeepers_) {
    if (g) g->StopClientIngress();
  }
  started_.store(false);
  {
    MutexLock lk(gc_mu_);
    stop_gc_ = true;
    gc_cv_.notify_all();
  }
  if (gc_thread_.joinable()) gc_thread_.join();
  for (auto& g : gatekeepers_) {
    if (g) g->StopTimers();
  }
  for (auto& s : shards_) {
    if (s) s->Stop();
  }
  if (remote_shards_) {
    // Ask the shard-server processes to exit, then tear the links down.
    // Destroying a link JOINS its receiver (the destructor waits for the
    // end-of-stream marker), so after this no thread can deliver into
    // the coordinator/gatekeeper handlers this object is about to
    // destroy.
    for (std::size_t s = 0; s < shard_endpoints_.size(); ++s) {
      (void)bus_->Send(coordinator_endpoint_, shard_endpoints_[s], kMsgStop,
                       nullptr);
    }
    // A link slot may be null: a failed recovery (spare pool empty)
    // leaves the dead shard's slot empty.
    for (auto& link : links_) {
      if (link) link->Stop();
    }
    links_.clear();
    // weaver-oracled exits on its parent socket's EOF; Stop() closes the
    // transport and joins the receiver, same as the shard links.
    if (oracle_link_) {
      oracle_link_->Stop();
      oracle_link_.reset();
    }
    // Gatekeeper processes: ask each control endpoint to stop, then tear
    // the links down. Closing a transport also fails the child's pending
    // StoreCommit waiters fast (its uplink EOFs), so nothing over there
    // rides out a full RPC timeout.
    if (remote_gatekeepers_) {
      for (std::size_t g = 0; g < gk_control_endpoints_.size(); ++g) {
        (void)bus_->Send(coordinator_endpoint_, gk_control_endpoints_[g],
                         kMsgStop, nullptr);
      }
      for (auto& link : gatekeeper_links_) {
        if (link) link->Stop();
      }
      gatekeeper_links_.clear();
      StopAgentPool();
    }
  }
  // Shard loops are joined (or their processes told to stop): no
  // accounting delta can arrive anymore, so any still-registered program
  // can never reach quiescence. Fail them so their waiters (async
  // sessions, blocking wrappers) unblock.
  FailAllExecutions(
      Status::Unavailable("deployment shut down during execution"));
  // Same for metrics collections: their replies can no longer arrive.
  {
    MutexLock lk(metrics_mu_);
    for (auto& [rid, c] : metrics_pending_) c.failed = true;
  }
  metrics_cv_.notify_all();
}

ShardId Weaver::PlaceNewNode(NodeId id) {
  MutexLock lk(partition_mu_);
  return partitioner_->Place(id, {}, locator_->ShardLoads());
}

Transaction Weaver::BeginTx() { return Transaction(this, kv_->Begin()); }

void Weaver::PayCommitDelay(std::size_t num_ops) {
  if (options_.kv_commit_delay_micros > 0 && num_ops > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.kv_commit_delay_micros));
  }
}

void Weaver::AnnotateCommitOutcome(Transaction* tx, const CommitResult& r) {
  if (tx == nullptr) return;
  tx->ts_ = r.timestamp;
  tx->committed_ = r.status.ok();
}

std::uint64_t Weaver::RegisterSessionRouter(GatekeeperId gk,
                                            std::weak_ptr<ReplyRouter> router) {
  MutexLock lk(session_routers_mu_);
  const std::uint64_t id = next_session_router_++;
  session_routers_.emplace(id, std::make_pair(gk, std::move(router)));
  return id;
}

void Weaver::UnregisterSessionRouter(std::uint64_t registration) {
  MutexLock lk(session_routers_mu_);
  session_routers_.erase(registration);
}

void Weaver::FailSessionCalls(GatekeeperId gk, const Status& status) {
  // Snapshot the routers outside the registry lock: FailAll fulfills
  // Pending handles, and a fulfilled waiter may immediately destroy its
  // Session, whose destructor takes the registry lock to unregister.
  std::vector<std::shared_ptr<ReplyRouter>> routers;
  {
    MutexLock lk(session_routers_mu_);
    for (const auto& [id, entry] : session_routers_) {
      if (entry.first != gk) continue;
      if (auto r = entry.second.lock()) routers.push_back(std::move(r));
    }
  }
  for (const auto& r : routers) r->FailAll(status);
}

Status Weaver::Commit(Transaction* tx) {
  if (tx == nullptr || !tx->valid()) {
    return Status::FailedPrecondition("invalid or moved-from transaction");
  }
  if (tx->committed_) {
    return Status::Internal("transaction already committed");
  }
  const GatekeeperId gk_id = NextGatekeeperId();
  // Simulated backing-store network round trip (client-side: does not
  // hold gatekeeper slots or locks, so commits still pipeline).
  PayCommitDelay(tx->ops_.size());
  if (!started_.load()) {
    if (remote_gatekeepers_) {
      // The commit path IS the gatekeeper process; there is no inline
      // fallback without one.
      return Status::FailedPrecondition(
          "out-of-parent gatekeepers need a started deployment");
    }
    // Deterministic deployments (start = false, PumpAll-driven tests,
    // post-bulk-load commits) have no ingress workers: execute inline.
    return CommitOnGatekeeper(tx, *gatekeepers_[gk_id]);
  }
  // Thin wrapper over the async path: route the same ClientCommit message
  // a session would send and wait for the reply (docs/client_api.md). The
  // lane id is per-call, so concurrent blocking callers never serialize
  // behind each other -- which is also why this cannot reuse Session
  // (sessions pin one lane). Mirror of Session::SubmitCommit +
  // Session::Commit; keep the two in sync.
  auto pending = Pending<CommitResult>::Make();
  auto msg = std::make_shared<ClientCommitMessage>();
  msg->session_id = next_internal_lane_.fetch_add(1, std::memory_order_relaxed);
  msg->request_id = internal_replies_->RegisterCommit(pending);
  msg->reply_to = internal_reply_endpoint_;
  msg->delay_paid = true;
  CommitPayload payload = tx->DetachForSubmit();
  msg->ops = std::move(payload.ops);
  msg->created_placements = std::move(payload.created_placements);
  msg->read_set = std::move(payload.read_set);
  const std::uint64_t request_id = msg->request_id;
  const Status sent = bus_->Send(internal_reply_endpoint_,
                                 GatekeeperClientEndpoint(gk_id),
                                 kMsgClientCommit, std::move(msg));
  if (!sent.ok()) {
    internal_replies_->FailCommit(request_id, sent);
    return sent;
  }
  const CommitResult& r = pending.Wait();
  AnnotateCommitOutcome(tx, r);
  return r.status;
}

Status Weaver::CommitOnGatekeeper(Transaction* tx, Gatekeeper& gk) {
  if (tx->db_ == nullptr) {
    return Status::FailedPrecondition("invalid or moved-from transaction");
  }
  if (tx->committed_) {
    return Status::Internal("transaction already committed");
  }
  // Shared side of the recovery gate: a partition replay in progress
  // (exclusive holder) must not interleave with commit slices
  // (docs/fault_tolerance.md). Uncontended in steady state.
  ReaderLock recovery_gate(commit_gate_);
  // Resolve the placement of every vertex touched by the batch: created
  // vertices use the partitioner's tentative choice; existing vertices use
  // the locator (backed by the store's vertex->shard map).
  std::unordered_map<NodeId, ShardId> placements = tx->created_placements_;
  for (const GraphOp& op : tx->ops_) {
    if (placements.count(op.node)) continue;
    auto shard = locator_->Lookup(op.node);
    if (!shard.has_value()) {
      return Status::NotFound("unknown vertex " + std::to_string(op.node));
    }
    placements[op.node] = *shard;
  }

  const Status st =
      gk.CommitTransaction(&tx->kvtx_, tx->ops_, placements, &tx->ts_);
  if (!st.ok()) return st;
  tx->committed_ = true;
  // Publish placements of created vertices to the locator.
  for (const auto& [id, shard] : tx->created_placements_) {
    locator_->Record(id, shard);
  }
  // Memoized program results depending on the written vertices are now
  // stale (paper §4.6's invalidation rule).
  if (options_.enable_program_cache) {
    for (const GraphOp& op : tx->ops_) {
      program_cache_.InvalidateNode(op.node);
    }
  }
  return Status::Ok();
}

Status Weaver::RunTransaction(
    const std::function<Status(Transaction&)>& body, int max_attempts) {
  return RetryTransaction([this] { return BeginTx(); },
                          [this](Transaction* tx) { return Commit(tx); },
                          body, max_attempts);
}

void Weaver::ExecuteProgramAsync(
    std::string_view name, std::vector<NextHop> starts,
    const RefinableTimestamp& ts, Gatekeeper* gk,
    std::function<void(Result<ProgramResult>)> done) {
  // Execution ids are allocated per run, NOT taken from the timestamp:
  // RunProgramAt re-executes old timestamps, whose event ids already
  // carry shard-side tombstones from their first run.
  const ProgramId pid =
      next_program_id_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seed_start = NowNanos();
  // Shared side of the recovery gate: held across registration + seeding
  // so a recovery's replay stream never interleaves with seed batches,
  // and so the supervisor's under-gate FailAllExecutions cannot miss an
  // execution that is mid-registration (docs/fault_tolerance.md).
  ReaderLock recovery_gate(commit_gate_);

  // Visited-vertex pruning eligibility is an execution-wide property
  // decided here, once, over the start params (conservative AND across
  // multi-start invocations) and carried in every hop batch.
  const NodeProgram* program = programs_->Find(name);
  bool visit_once = program != nullptr && !starts.empty();
  for (const NextHop& hop : starts) {
    if (!visit_once) break;
    visit_once = program->VisitOnce(hop.params);
  }

  // Group the start hops by owning shard; hops to unknown vertices are
  // dropped (the program would see a non-existent NodeView anyway).
  std::vector<std::vector<NextHop>> by_shard(shards_.size());
  std::uint64_t total = 0;
  for (NextHop& hop : starts) {
    auto shard = locator_->Lookup(hop.node);
    if (!shard.has_value() || *shard >= shards_.size()) continue;
    if (!ShardAlive(*shard)) {
      done(Status::Unavailable("shard " + std::to_string(*shard) +
                               " is down; re-run the program"));
      return;
    }
    by_shard[*shard].push_back(std::move(hop));
    ++total;
  }
  if (total == 0) {
    ProgramResult empty;
    empty.timestamp = ts;
    done(std::move(empty));
    return;
  }

  // The execution must be fully registered -- seed count included --
  // before the first batch goes out: a shard can execute and report the
  // whole traversal before we would return from Send.
  {
    auto ex = std::make_unique<ProgramExecution>();
    ex->pid = pid;
    ex->ts = ts;
    ex->starts = total;
    ex->touched.assign(shards_.size(), false);
    ex->done = std::move(done);
    ex->begin_ns = seed_start;
    ex->traced = trace_.ShouldSample();
    MutexLock lk(executions_mu_);
    executions_.emplace(pid, std::move(ex));
  }

  Status seed_failure = Status::Ok();
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    auto batch = std::make_shared<WaveHopBatchMessage>();
    batch->program_id = pid;
    batch->ts = ts;
    batch->program_name = std::string(name);
    batch->coordinator = coordinator_endpoint_;
    batch->visit_once = visit_once;
    batch->hops = std::move(by_shard[s]);
    const Status sent =
        bus_->Send(coordinator_endpoint_, shard_endpoints_[s],
                   kMsgWaveHops, std::move(batch));
    if (!sent.ok()) seed_failure = sent;
  }
  // Seeding (grouping + sends) is gatekeeper work in the paper's
  // topology; the per-cycle merge cost lives on the shard threads.
  if (gk != nullptr) gk->AddBusyNs(NowNanos() - seed_start);

  if (!seed_failure.ok()) {
    // A shard died between the liveness check and the send: the seeded
    // credits can never balance, so fail the execution through the same
    // path an in-flight abort takes (idempotent against a concurrent
    // normal completion).
    auto err = std::make_shared<WaveAccountingMessage>();
    err->program_id = pid;
    err->error = Status::Unavailable("shard went down during seeding; "
                                     "re-run the program");
    OnWaveAccounting(err);
  }
}

void Weaver::OnWaveAccounting(
    const std::shared_ptr<WaveAccountingMessage>& m) {
  std::unique_ptr<ProgramExecution> finished;
  {
    MutexLock lk(executions_mu_);
    auto it = executions_.find(m->program_id);
    if (it == executions_.end()) return;  // late delta after an abort
    ProgramExecution& ex = *it->second;
    ex.accounting_msgs++;
    ex.consumed += m->hops_consumed;
    ex.spawned += m->hops_spawned;
    ex.visited += m->vertices_visited;
    ex.cycles += m->cycles;
    ex.forwarded_batches += m->forwarded_batches;
    if (m->shard < ex.touched.size()) ex.touched[m->shard] = true;
    for (auto& ret : m->returns) ex.returns.push_back(std::move(ret));
    if (!m->error.ok()) {
      ex.failure = m->error;
    } else if (options_.max_program_hops > 0 &&
               ex.consumed > options_.max_program_hops) {
      // The hop limit is the sole runaway guard: every drain cycle
      // consumes at least one hop, so it also bounds cycles. (The old
      // per-round max_program_waves has no decentralized analog --
      // cycle counts scale with batching granularity, not traversal
      // depth, so a cycle cap would spuriously abort wide traversals.)
      ex.failure = Status::TimedOut("node program exceeded max_program_hops "
                                    "(runaway traversal?)");
    }
    // Quiescent exactly when every hop ever created has been consumed;
    // any hop still queued or in flight holds an unreturned credit.
    if (ex.failure.ok() && ex.consumed != ex.spawned + ex.starts) return;
    finished = std::move(it->second);
    executions_.erase(it);
  }
  CompleteExecution(std::move(finished));
}

void Weaver::CompleteExecution(std::unique_ptr<ProgramExecution> ex) {
  const ProgramId pid = ex->pid;
  const bool aborted = !ex->failure.ok();
  // GC the per-shard program state (paper §4.5). On normal completion
  // only touched shards hold any; an abort may have seeded contexts on
  // shards that never reported, so it sweeps every live shard (they
  // also tombstone the id against late hop batches). never_block: this
  // runs on a shard's own thread.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!ShardAlive(s)) continue;
    if (!aborted && (s >= ex->touched.size() || !ex->touched[s])) continue;
    auto end = std::make_shared<EndProgramMessage>();
    end->program_id = pid;
    (void)bus_->Send(coordinator_endpoint_, shard_endpoints_[s],
                     kMsgEndProgram, std::move(end), /*never_block=*/true);
  }
  const std::uint64_t quiesced_ns = NowNanos();
  (aborted ? coord_programs_aborted_ : coord_programs_completed_)->Add();
  coord_program_hops_->Add(ex->consumed);
  coord_accounting_msgs_->Add(ex->accounting_msgs);
  if (ex->begin_ns != 0) {
    coord_program_latency_->Record(quiesced_ns - ex->begin_ns);
  }
  const auto record_span = [&] {
    if (!ex->traced) return;
    obs::TraceSpan span;
    span.kind = obs::TraceSpan::Kind::kProgram;
    span.id = pid;
    span.begin_ns = ex->begin_ns;
    span.applied_ns = quiesced_ns;  // quiescence: every hop consumed
    span.replied_ns = NowNanos();   // after the done callback ran
    trace_.Append(span);
  };
  if (!ex->done) {
    record_span();
    return;
  }
  if (aborted) {
    ex->done(ex->failure);
    record_span();
    return;
  }
  ProgramResult result;
  result.timestamp = ex->ts;
  result.returns = std::move(ex->returns);
  result.vertices_visited = ex->visited;
  result.waves = ex->cycles;
  result.hops = ex->consumed;
  result.forwarded_batches = ex->forwarded_batches;
  result.coordinator_msgs = ex->accounting_msgs;
  ex->done(std::move(result));
  record_span();
}

obs::MetricsSnapshot Weaver::ClusterMetrics::Merged() const {
  obs::MetricsSnapshot merged = local;
  for (const MetricsReportMessage& report : remote) {
    merged.Merge(report.snapshot);
  }
  return merged;
}

void Weaver::OnMetricsReport(
    const std::shared_ptr<MetricsReportMessage>& m) {
  // Freshest depth wins, solicited or not: this is what keeps the
  // gatekeepers' NOP backpressure check meaningful for remote shards
  // (MessageBus::QueueDepth's staleness contract).
  if (m->shard < shard_endpoints_.size()) {
    bus_->NoteRemoteDepth(shard_endpoints_[m->shard], m->inbox_depth);
  }
  {
    MutexLock lk(metrics_mu_);
    auto it = metrics_pending_.find(m->request_id);
    if (it == metrics_pending_.end()) return;  // background poll reply
    it->second.reports.push_back(*m);
    if (it->second.reports.size() < it->second.expected) return;
  }
  metrics_cv_.notify_all();
}

std::size_t Weaver::RequestRemoteMetrics(std::uint64_t rid) {
  std::size_t sent = 0;
  const auto ask = [&](EndpointId dst) {
    auto req = std::make_shared<MetricsRequestMessage>();
    req->request_id = rid;
    req->reply_to = coordinator_endpoint_;
    if (bus_->Send(coordinator_endpoint_, dst, kMsgMetricsRequest,
                   std::move(req), /*never_block=*/true)
            .ok()) {
      ++sent;
    }
  };
  for (std::size_t s = 0; s < shard_endpoints_.size(); ++s) {
    ask(shard_endpoints_[s]);
  }
  // The oracle reports like any other server process; its report carries
  // shard = kOracleMetricsSource, which every by-shard consumer
  // bounds-checks away.
  if (remote_oracle_) ask(oracle_endpoint_);
  return sent;
}

void Weaver::MaybePollRemoteMetrics() {
  if (!remote_shards_ || options_.metrics_poll_period_micros == 0) return;
  const std::uint64_t now = NowNanos();
  if (now - last_metrics_poll_ns_ <
      options_.metrics_poll_period_micros * 1000) {
    return;
  }
  last_metrics_poll_ns_ = now;
  // Unsolicited: no pending entry, so the replies only refresh depths.
  RequestRemoteMetrics(
      next_metrics_request_.fetch_add(1, std::memory_order_relaxed));
}

Result<Weaver::ClusterMetrics> Weaver::CollectMetrics(
    std::uint64_t timeout_micros) {
  ClusterMetrics out;
  out.local = metrics_.Snapshot();
  if (!remote_shards_) return out;
  if (!started_.load()) {
    return Status::FailedPrecondition(
        "remote metrics require a started deployment");
  }
  const std::uint64_t rid =
      next_metrics_request_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lk(metrics_mu_);
    metrics_pending_[rid].expected =
        shard_endpoints_.size() + (remote_oracle_ ? 1 : 0);
  }
  const std::size_t sent = RequestRemoteMetrics(rid);
  MetricsCollection collection;
  Status failure = Status::Ok();
  {
    MutexLock lk(metrics_mu_);
    // Re-find on every check: concurrent CollectMetrics calls insert into
    // the map while this one waits, which can invalidate references.
    if (sent < metrics_pending_[rid].expected) {
      failure = Status::Unavailable("a shard-server process is gone");
    } else {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(timeout_micros);
      bool timed_out = false;
      while (!timed_out) {
        const MetricsCollection& p = metrics_pending_[rid];
        if (p.failed || p.reports.size() >= p.expected) break;
        timed_out = metrics_cv_.wait_until(lk.native(), deadline) ==
                    std::cv_status::timeout;
      }
      const MetricsCollection& p = metrics_pending_[rid];
      if (p.failed) {
        failure = Status::Unavailable("deployment shut down during "
                                      "metrics collection");
      } else if (p.reports.size() < p.expected) {
        failure = Status::TimedOut(
            "metrics collection incomplete: " +
            std::to_string(p.reports.size()) + "/" +
            std::to_string(p.expected) + " shard reports");
      }
    }
    collection = std::move(metrics_pending_[rid]);
    metrics_pending_.erase(rid);
  }
  if (!failure.ok()) return failure;
  out.remote = std::move(collection.reports);
  std::sort(out.remote.begin(), out.remote.end(),
            [](const MetricsReportMessage& a, const MetricsReportMessage& b) {
              return a.shard < b.shard;
            });
  return out;
}

void Weaver::FailAllExecutions(const Status& status) {
  std::unordered_map<ProgramId, std::unique_ptr<ProgramExecution>> orphans;
  {
    MutexLock lk(executions_mu_);
    orphans.swap(executions_);
  }
  for (auto& [pid, ex] : orphans) {
    ex->failure = status;
    CompleteExecution(std::move(ex));
  }
}

Result<ProgramResult> Weaver::ExecuteProgram(std::string_view name,
                                             std::vector<NextHop> starts,
                                             const RefinableTimestamp& ts,
                                             Gatekeeper* gk) {
  auto pending = Pending<Result<ProgramResult>>::Make();
  ExecuteProgramAsync(name, std::move(starts), ts, gk,
                      [pending](Result<ProgramResult> r) mutable {
                        pending.Fulfill(std::move(r));
                      });
  return pending.Take();
}

void Weaver::RunProgramAsyncOn(
    GatekeeperId gk_id, std::string_view name, std::vector<NextHop> starts,
    std::function<void(Result<ProgramResult>)> done) {
  RunProgramAsyncOn(gk_id, name, std::move(starts), RefinableTimestamp(),
                    std::move(done));
}

void Weaver::RunProgramAsyncOn(
    GatekeeperId gk_id, std::string_view name, std::vector<NextHop> starts,
    const RefinableTimestamp& fence,
    std::function<void(Result<ProgramResult>)> done) {
  if (!started_.load()) {
    done(Status::FailedPrecondition("deployment not started"));
    return;
  }
  if (gk_id >= gatekeepers_.size()) {
    done(Status::InvalidArgument("no such gatekeeper"));
    return;
  }
  if (programs_->Find(name) == nullptr) {
    done(Status::NotFound("no node program named " + std::string(name)));
    return;
  }
  // Single-start invocations are the cacheable shape (paper §4.6).
  const bool cacheable =
      options_.enable_program_cache && starts.size() == 1;
  if (cacheable) {
    if (auto cached =
            program_cache_.Lookup(name, starts[0].node, starts[0].params)) {
      done(*cached);
      return;
    }
  }
  Gatekeeper& gk = *gatekeepers_[gk_id];
  const RefinableTimestamp ts =
      gk.BeginProgram(fence.valid() ? &fence.clock : nullptr);
  Gatekeeper* gkp = &gk;
  const NodeId cache_node = cacheable ? starts[0].node : kInvalidNodeId;
  const std::string cache_params = cacheable ? starts[0].params : "";
  ExecuteProgramAsync(
      name, std::move(starts), ts, &gk,
      [this, gkp, ts, cacheable, cache_node,
       cache_params = std::move(cache_params), name = std::string(name),
       done = std::move(done)](Result<ProgramResult> r) mutable {
        gkp->EndProgram(ts);
        if (cacheable && r.ok()) {
          program_cache_.Insert(name, cache_node, cache_params, *r);
        }
        done(std::move(r));
      });
}

Result<ProgramResult> Weaver::RunProgramOn(GatekeeperId gk_id,
                                           std::string_view name,
                                           std::vector<NextHop> starts) {
  if (remote_gatekeepers_) {
    // The clock owner lives out-of-parent: route the same ClientProgram
    // message a session would send and wait for the reply. Mirror of
    // Session::RunProgramBatchAsync; keep the two in sync.
    if (!started_.load()) {
      return Status::FailedPrecondition("deployment not started");
    }
    if (gk_id >= options_.num_gatekeepers) {
      return Status::InvalidArgument("no such gatekeeper");
    }
    if (programs_->Find(name) == nullptr) {
      return Status::NotFound("no node program named " + std::string(name));
    }
    auto pending = Pending<Result<ProgramResult>>::Make();
    auto msg = std::make_shared<ClientProgramMessage>();
    msg->session_id =
        next_internal_lane_.fetch_add(1, std::memory_order_relaxed);
    msg->reply_to = internal_reply_endpoint_;
    ProgramRequest req;
    req.request_id = internal_replies_->RegisterProgram(pending);
    req.program_name = std::string(name);
    req.starts = std::move(starts);
    const std::uint64_t request_id = req.request_id;
    msg->requests.push_back(std::move(req));
    const Status sent =
        bus_->Send(internal_reply_endpoint_, gk_client_endpoints_[gk_id],
                   kMsgClientProgram, std::move(msg));
    if (!sent.ok()) {
      internal_replies_->FailProgram(request_id, sent);
      return sent;
    }
    return pending.Take();
  }
  auto pending = Pending<Result<ProgramResult>>::Make();
  RunProgramAsyncOn(gk_id, name, std::move(starts),
                    [pending](Result<ProgramResult> r) mutable {
                      pending.Fulfill(std::move(r));
                    });
  return pending.Take();
}

Result<ProgramResult> Weaver::RunProgramOn(GatekeeperId gk_id,
                                           std::string_view name,
                                           NodeId start, std::string params) {
  std::vector<NextHop> starts;
  starts.push_back(NextHop{start, std::move(params)});
  return RunProgramOn(gk_id, name, std::move(starts));
}

Result<ProgramResult> Weaver::RunProgram(std::string_view name,
                                         std::vector<NextHop> starts) {
  return RunProgramOn(NextGatekeeperId(), name, std::move(starts));
}

Result<ProgramResult> Weaver::RunProgramAt(std::string_view name,
                                           std::vector<NextHop> starts,
                                           const RefinableTimestamp& ts) {
  if (!started_.load()) {
    return Status::FailedPrecondition("deployment not started");
  }
  if (!ts.valid()) {
    return Status::InvalidArgument("invalid historical timestamp");
  }
  if (programs_->Find(name) == nullptr) {
    return Status::NotFound("no node program named " + std::string(name));
  }
  return ExecuteProgram(name, std::move(starts), ts, nullptr);
}

Result<ProgramResult> Weaver::RunProgram(std::string_view name, NodeId start,
                                         std::string params) {
  return RunProgramOn(NextGatekeeperId(), name, start, std::move(params));
}

Status Weaver::BulkCreateNode(
    NodeId id, std::vector<std::pair<std::string, std::string>> properties) {
  if (started_.load()) {
    return Status::FailedPrecondition("bulk load requires a stopped deployment");
  }
  if (remote_shards_) {
    return Status::FailedPrecondition(
        "bulk load requires in-process shards; load through transactions");
  }
  MutexLock lk(bulk_mu_);
  if (!bulk_ts_.valid()) {
    bulk_ts_ = gatekeepers_[0]->BeginProgram();  // any fresh timestamp
    gatekeepers_[0]->EndProgram(bulk_ts_);
  }
  // Keep the allocator ahead of explicitly chosen ids so later
  // transactional CreateNode() calls cannot collide with loaded vertices.
  std::uint64_t expected = next_node_id_.load(std::memory_order_relaxed);
  while (expected <= id && !next_node_id_.compare_exchange_weak(
                               expected, id + 1, std::memory_order_relaxed)) {
  }
  const ShardId shard = PlaceNewNode(id);
  GraphStore& g = shards_[shard]->graph();
  WEAVER_RETURN_IF_ERROR(g.CreateNode(id, bulk_ts_));
  for (auto& [k, v] : properties) {
    WEAVER_RETURN_IF_ERROR(g.AssignNodeProperty(id, k, v, bulk_ts_));
  }
  locator_->Record(id, shard);
  if (options_.bulk_load_durable) bulk_dirty_[shard].push_back(id);
  return Status::Ok();
}

Result<EdgeId> Weaver::BulkCreateEdge(
    NodeId from, NodeId to,
    std::vector<std::pair<std::string, std::string>> properties) {
  if (started_.load()) {
    return Status::FailedPrecondition("bulk load requires a stopped deployment");
  }
  if (remote_shards_) {
    return Status::FailedPrecondition(
        "bulk load requires in-process shards; load through transactions");
  }
  auto shard = locator_->Lookup(from);
  if (!shard.has_value()) {
    return Status::NotFound("bulk edge source " + std::to_string(from));
  }
  MutexLock lk(bulk_mu_);
  const EdgeId eid = AllocateEdgeId();
  GraphStore& g = shards_[*shard]->graph();
  WEAVER_RETURN_IF_ERROR(g.CreateEdge(eid, from, to, bulk_ts_));
  for (auto& [k, v] : properties) {
    WEAVER_RETURN_IF_ERROR(g.AssignEdgeProperty(from, eid, k, v, bulk_ts_));
  }
  return eid;
}

Status Weaver::FinishBulkLoad() {
  if (started_.load()) {
    return Status::FailedPrecondition("bulk load requires a stopped deployment");
  }
  if (!options_.bulk_load_durable) return Status::Ok();
  MutexLock lk(bulk_mu_);
  ByteWriter ts_writer;
  bulk_ts_.Serialize(&ts_writer);
  const std::string ts_blob = ts_writer.Take();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]) continue;  // remote: nothing was bulk loaded
    GraphStore& g = shards_[s]->graph();
    for (NodeId id : bulk_dirty_[s]) {
      const Node* node = g.FindNode(id);
      if (node == nullptr) continue;
      WEAVER_RETURN_IF_ERROR(
          kv_->Put(kv_keys::VertexData(id), GraphStore::SerializeNode(*node)));
      WEAVER_RETURN_IF_ERROR(
          kv_->Put(kv_keys::VertexShardMap(id), std::to_string(s)));
      WEAVER_RETURN_IF_ERROR(
          kv_->Put(kv_keys::VertexLastUpdate(id), ts_blob));
    }
    bulk_dirty_[s].clear();
  }
  return Status::Ok();
}

void Weaver::RunGarbageCollection(bool include_shards) {
  // Watermark: pointwise minimum over every gatekeeper's oldest in-flight
  // operation (paper §4.5).
  RefinableTimestamp watermark;
  if (remote_gatekeepers_) {
    // Out-of-parent gatekeepers push their oldest-active watermark every
    // few milliseconds (GkWatermark); fold the cached copies. Until every
    // gatekeeper has reported at least once there is no safe watermark --
    // skip the round rather than collect at a guess.
    MutexLock lk(gk_wm_mu_);
    for (const RefinableTimestamp& wm : gk_watermarks_) {
      if (!wm.valid()) return;
    }
    watermark = gk_watermarks_[0];
    std::vector<std::uint64_t> mins(watermark.clock.counters());
    std::uint32_t epoch = watermark.clock.epoch();
    for (std::size_t g = 1; g < gk_watermarks_.size(); ++g) {
      const RefinableTimestamp& other = gk_watermarks_[g];
      epoch = std::min(epoch, other.clock.epoch());
      for (std::size_t i = 0; i < mins.size() && i < other.clock.width();
           ++i) {
        mins[i] = std::min(mins[i], other.clock.Component(i));
      }
    }
    watermark.clock = VectorClock(epoch, std::move(mins));
  } else {
    watermark = gatekeepers_[0]->OldestActive();
    std::vector<std::uint64_t> mins(watermark.clock.counters());
    std::uint32_t epoch = watermark.clock.epoch();
    for (std::size_t g = 1; g < gatekeepers_.size(); ++g) {
      const RefinableTimestamp other = gatekeepers_[g]->OldestActive();
      epoch = std::min(epoch, other.clock.epoch());
      for (std::size_t i = 0; i < mins.size() && i < other.clock.width();
           ++i) {
        mins[i] = std::min(mins[i], other.clock.Component(i));
      }
    }
    watermark.clock = VectorClock(epoch, std::move(mins));
  }
  if (include_shards) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!ShardAlive(s)) continue;
      auto gc = std::make_shared<GcMessage>();
      gc->watermark = watermark;
      bus_->Send(coordinator_endpoint_, shard_endpoints_[s], kMsgGc,
                 std::move(gc));
    }
  }
  // With weaver-oracled this is the RPC that drives the service's
  // changelog GC (and trims the parent's replica); a failure just means
  // the next GC round retries with a newer watermark.
  (void)oracle_client_->CollectService(watermark.clock);
}

Status Weaver::KillShard(ShardId id) {
  if (remote_shards_) {
    return Status::FailedPrecondition(
        "fault injection requires in-process shards");
  }
  if (id >= shards_.size()) return Status::InvalidArgument("no such shard");
  if (!shards_[id]) return Status::FailedPrecondition("shard already dead");
  bus_->Detach(shards_[id]->endpoint());
  shards_[id]->Stop();
  // Remember the endpoint for recovery before dropping the server.
  dead_shard_endpoints_[id] = shards_[id]->endpoint();
  shards_[id].reset();
  cluster_.MarkFailed("shard" + std::to_string(id));
  return Status::Ok();
}

Status Weaver::RecoverShard(ShardId id) {
  if (remote_shards_) {
    return Status::FailedPrecondition(
        "fault injection requires in-process shards");
  }
  if (id >= shards_.size()) return Status::InvalidArgument("no such shard");
  if (shards_[id]) return Status::FailedPrecondition("shard is alive");
  Shard::Options so;
  so.id = id;
  so.num_gatekeepers = options_.num_gatekeepers;
  so.bus = bus_.get();
  so.oracle = &oracle_;
  so.programs = programs_;
  so.locator = locator_.get();
  so.inbox_capacity = options_.shard_inbox_capacity;
  so.queue_high_water = options_.shard_queue_high_water;
  so.max_hops_per_cycle = options_.shard_max_hops_per_cycle;
  so.metrics = &metrics_;
  so.reuse_endpoint = dead_shard_endpoints_[id];
  auto shard = std::make_unique<Shard>(so);  // reattaches: messages buffer
  shard->SetShardEndpoints(shard_endpoints_);

  // Restore the partition from the backing store (paper §4.3).
  for (const auto& [key, value] :
       kv_->ScanPrefix(kv_keys::kVertexShardMapPrefix)) {
    const NodeId node_id = std::strtoull(
        key.substr(kv_keys::kVertexShardMapPrefix.size()).c_str(), nullptr,
        10);
    const ShardId owner =
        static_cast<ShardId>(std::strtoul(value.c_str(), nullptr, 10));
    if (owner != id) continue;
    auto blob = kv_->Get(kv_keys::VertexData(node_id));
    if (!blob.ok()) continue;
    auto node = GraphStore::DeserializeNode(*blob);
    if (!node.ok()) continue;
    shard->graph().InstallNode(std::move(node).value());
  }
  if (started_.load()) shard->Start();
  shards_[id] = std::move(shard);
  cluster_.MarkRecovered("shard" + std::to_string(id));
  return Status::Ok();
}

Status Weaver::ReplaceGatekeeper(GatekeeperId id) {
  if (id >= options_.num_gatekeepers) {
    return Status::InvalidArgument("no such gatekeeper");
  }
  // The backup restarts the failed gatekeeper's vector clock; the cluster
  // manager imposes an epoch barrier so all clocks advance in unison
  // (paper §4.3).
  if (remote_gatekeepers_) {
    // The clocks live out-of-parent: bump the cluster epoch here and
    // broadcast the new value to every gatekeeper process's control
    // endpoint; each advances its own clock on receipt.
    auto new_epoch = cluster_.AdvanceEpochBarrier({});
    if (!new_epoch.ok()) return new_epoch.status();
    for (std::size_t g = 0; g < gk_control_endpoints_.size(); ++g) {
      auto adv = std::make_shared<GkEpochAdvanceMessage>();
      adv->epoch = *new_epoch;
      bus_->Send(coordinator_endpoint_, gk_control_endpoints_[g],
                 kMsgGkEpochAdvance, std::move(adv));
    }
    cluster_.MarkRecovered("gk" + std::to_string(id));
    return Status::Ok();
  }
  std::vector<Gatekeeper*> gks;
  gks.reserve(gatekeepers_.size());
  for (auto& g : gatekeepers_) gks.push_back(g.get());
  auto new_epoch = cluster_.AdvanceEpochBarrier(gks);
  if (!new_epoch.ok()) return new_epoch.status();
  cluster_.MarkRecovered("gk" + std::to_string(id));
  return Status::Ok();
}

void Weaver::PumpAll() {
  for (auto& g : gatekeepers_) g->PumpAnnounce();
  for (auto& g : gatekeepers_) g->PumpNop();
  for (auto& s : shards_) {
    if (s) s->ProcessUntilIdle();  // remote shards drain on their own
  }
}

}  // namespace weaver
