// GraphOp: one buffered write inside a Weaver transaction (paper §2.2).
//
// Clients buffer writes and submit them as a batch at commit (paper §4.2);
// the gatekeeper applies the batch to the backing store first and then
// forwards the per-shard slices to the shard servers, which apply them to
// the in-memory multi-version graph. ApplyGraphOp is the single shared
// implementation of "apply one op to one vertex" used by both paths, so
// the durable and in-memory copies cannot diverge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "graph/graph_store.h"
#include "order/timestamp.h"

namespace weaver {

enum class GraphOpType : std::uint8_t {
  kCreateNode,
  kDeleteNode,
  kCreateEdge,
  kDeleteEdge,
  kAssignNodeProp,
  kRemoveNodeProp,
  kAssignEdgeProp,
  kRemoveEdgeProp,
};

struct GraphOp {
  GraphOpType type = GraphOpType::kCreateNode;
  /// Primary vertex: the op is routed to (and stored with) this vertex's
  /// shard. For edge ops this is the edge's source vertex.
  NodeId node = kInvalidNodeId;
  EdgeId edge = kInvalidEdgeId;
  NodeId to = kInvalidNodeId;  // target vertex for kCreateEdge
  std::string key;
  std::string value;

  static GraphOp CreateNode(NodeId id) {
    return {GraphOpType::kCreateNode, id, kInvalidEdgeId, kInvalidNodeId,
            "", ""};
  }
  static GraphOp DeleteNode(NodeId id) {
    return {GraphOpType::kDeleteNode, id, kInvalidEdgeId, kInvalidNodeId,
            "", ""};
  }
  static GraphOp CreateEdge(EdgeId eid, NodeId from, NodeId to) {
    return {GraphOpType::kCreateEdge, from, eid, to, "", ""};
  }
  static GraphOp DeleteEdge(NodeId from, EdgeId eid) {
    return {GraphOpType::kDeleteEdge, from, eid, kInvalidNodeId, "", ""};
  }
  static GraphOp AssignNodeProp(NodeId id, std::string key,
                                std::string value) {
    return {GraphOpType::kAssignNodeProp, id, kInvalidEdgeId, kInvalidNodeId,
            std::move(key), std::move(value)};
  }
  static GraphOp RemoveNodeProp(NodeId id, std::string key) {
    return {GraphOpType::kRemoveNodeProp, id, kInvalidEdgeId, kInvalidNodeId,
            std::move(key), ""};
  }
  static GraphOp AssignEdgeProp(NodeId from, EdgeId eid, std::string key,
                                std::string value) {
    return {GraphOpType::kAssignEdgeProp, from, eid, kInvalidNodeId,
            std::move(key), std::move(value)};
  }
  static GraphOp RemoveEdgeProp(NodeId from, EdgeId eid, std::string key) {
    return {GraphOpType::kRemoveEdgeProp, from, eid, kInvalidNodeId,
            std::move(key), ""};
  }
};

/// Applies `op` to an individual vertex object at timestamp `ts`.
/// kCreateNode is not handled here (it creates the object; see callers).
Status ApplyGraphOpToNode(Node* node, const GraphOp& op,
                          const RefinableTimestamp& ts);

/// Applies `op` to a shard-local graph store at timestamp `ts`.
Status ApplyGraphOpToStore(GraphStore* store, const GraphOp& op,
                           const RefinableTimestamp& ts);

const char* GraphOpTypeName(GraphOpType t);

}  // namespace weaver
