// NodeLocator: vertex -> shard directory.
//
// The authoritative mapping lives in the backing store (paper §3.2: "the
// backing store directs transactions on a vertex to the shard server
// responsible for that vertex"); this is the in-memory cache all request
// routing goes through, with a read-through fallback to the store.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/ids.h"
#include "common/sync.h"
#include "kvstore/kvstore.h"

namespace weaver {

class NodeLocator {
 public:
  NodeLocator(KvStore* kv, std::size_t num_shards)
      : kv_(kv), loads_(num_shards, 0) {}

  /// Directory for a process with no backing store (remote shard-server
  /// processes, docs/transport.md): unknown vertices resolve through
  /// `default_placement` instead of a kv read-through. Only sound for
  /// deployments using deterministic (hash) placement -- the deployment
  /// enforces that before handing out this mode.
  NodeLocator(std::size_t num_shards,
              std::function<ShardId(NodeId)> default_placement)
      : kv_(nullptr),
        default_placement_(std::move(default_placement)),
        loads_(num_shards, 0) {}

  /// Shard of `node`, or nullopt if the vertex is unknown.
  std::optional<ShardId> Lookup(NodeId node) const {
    {
      ReaderLock lk(mu_);
      auto it = map_.find(node);
      if (it != map_.end()) return it->second;
    }
    if (kv_ == nullptr) {
      if (default_placement_) return default_placement_(node);
      return std::nullopt;
    }
    // Read-through to the backing store (another client may have created
    // the vertex).
    auto blob = kv_->Get(kv_keys::VertexShardMap(node));
    if (!blob.ok()) return std::nullopt;
    const ShardId shard =
        static_cast<ShardId>(std::strtoul(blob->c_str(), nullptr, 10));
    const_cast<NodeLocator*>(this)->Record(node, shard);
    return shard;
  }

  void Record(NodeId node, ShardId shard) {
    WriterLock lk(mu_);
    auto [it, inserted] = map_.try_emplace(node, shard);
    if (inserted && shard < loads_.size()) loads_[shard]++;
  }

  void Forget(NodeId node) {
    WriterLock lk(mu_);
    auto it = map_.find(node);
    if (it != map_.end()) {
      if (it->second < loads_.size()) loads_[it->second]--;
      map_.erase(it);
    }
  }

  /// Vertex count per shard (partitioner input).
  std::vector<std::size_t> ShardLoads() const {
    ReaderLock lk(mu_);
    return loads_;
  }

  std::size_t Size() const {
    ReaderLock lk(mu_);
    return map_.size();
  }

 private:
  KvStore* kv_;
  std::function<ShardId(NodeId)> default_placement_;
  mutable SharedMutex mu_;
  std::unordered_map<NodeId, ShardId> map_ GUARDED_BY(mu_);
  std::vector<std::size_t> loads_ GUARDED_BY(mu_);
};

}  // namespace weaver
