// ProgramCache: node-program result memoization (paper §4.6).
//
// "Weaver enables applications to memoize the results of node programs at
// vertices and to reuse the memoized results in subsequent executions. In
// order to maintain consistency guarantees, Weaver enables applications
// to invalidate the cached results by discovering the changes in the
// graph structure since the result was cached."
//
// An entry caches one program execution's client-visible result keyed by
// (program, start vertex, params), together with the set of vertices the
// execution read -- its dependency set. Any committed write touching a
// dependency invalidates every entry that depends on it, which is exactly
// the paper's path-cache example: deleting any vertex on a cached path
// discards the cached path.
//
// The paper's evaluation disables caching (§4.6), and so does this
// library by default (WeaverOptions::enable_program_cache); tests and the
// cache ablation exercise it.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/annotations.h"
#include "common/ids.h"
#include "common/sync.h"
#include "core/node_program.h"

namespace weaver {

class ProgramCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t entries_dropped = 0;
  };

  explicit ProgramCache(std::size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  /// Cached result for (program, start, params), or nullopt.
  std::optional<ProgramResult> Lookup(std::string_view program, NodeId start,
                                      const std::string& params);

  /// Memoizes `result`; its dependency set is every vertex that produced
  /// a return value (the vertices the program visited and read).
  void Insert(std::string_view program, NodeId start,
              const std::string& params, const ProgramResult& result);

  /// Invalidates every entry whose dependency set contains `node`
  /// (invoked for each vertex a committed transaction wrote).
  void InvalidateNode(NodeId node);

  void Clear();
  std::size_t Size() const;
  Stats stats() const;

 private:
  struct Key {
    std::string program;
    NodeId start;
    std::string params;
    bool operator==(const Key& other) const {
      return start == other.start && program == other.program &&
             params == other.params;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::string>{}(k.program) ^ MixHash64(k.start) ^
             (std::hash<std::string>{}(k.params) << 1);
    }
  };
  struct Entry {
    ProgramResult result;
    std::unordered_set<NodeId> dependencies;
  };

  /// Erases one entry and strips it from the reverse index.
  void EraseEntryLocked(const Key& key) REQUIRES(mu_);

  std::size_t max_entries_;
  mutable Mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_ GUARDED_BY(mu_);
  // Reverse index: vertex -> keys depending on it.
  std::unordered_map<NodeId, std::unordered_set<const Key*>> by_node_
      GUARDED_BY(mu_);
  /// Insertion order for capacity eviction: oldest entries go first, one
  /// record per live key (overwrites keep their original slot).
  /// Invalidations leave stale records behind; they are skipped at
  /// eviction time and compacted away when they outnumber live entries.
  std::deque<Key> fifo_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace weaver
