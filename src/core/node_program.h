// Node programs: Weaver's read-only graph analysis queries (paper §2.3).
//
// A node program is a stored-procedure-like computation that runs at
// vertices and propagates itself along edges, scatter/gather style. The
// framework mirrors the paper's Fig 3 API:
//
//   * the program runs against a NodeView -- a consistent snapshot of one
//     vertex at the program's refinable timestamp Tprog (multi-version
//     reads, paper §4.1);
//   * prog_params arrive from the previous hop; the program returns a list
//     of (next vertex, params) pairs to visit next;
//   * prog_state is per-(program-instance, vertex) scratch state that
//     persists at the vertex until the program completes everywhere, then
//     is garbage collected (paper §4.5).
//
// Programs are registered by name in a ProgramRegistry; shards look them
// up when executing a wave. Parameters, state, and return values are
// opaque byte strings (programs serialize with ByteWriter/ByteReader),
// exactly as they would be on a real wire.
#pragma once

#include <any>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "graph/graph_store.h"
#include "order/timestamp.h"

namespace weaver {

/// Read-only view of one edge at the program's timestamp.
class EdgeView {
 public:
  EdgeView(const Edge* edge, const RefinableTimestamp* ts,
           const OrderFn* order)
      : edge_(edge), ts_(ts), order_(order) {}

  EdgeId id() const { return edge_->id; }
  NodeId to() const { return edge_->to; }

  std::optional<std::string> GetProperty(std::string_view key) const {
    return edge_->props.ValueAt(key, *ts_, *order_);
  }
  /// edge.check(prop) from the paper's Fig 3: true iff the edge carries
  /// `key` = `value` at the program's timestamp.
  bool Check(std::string_view key, std::string_view value) const {
    return edge_->props.Check(key, value, *ts_, *order_);
  }

 private:
  const Edge* edge_;
  const RefinableTimestamp* ts_;
  const OrderFn* order_;
};

/// Read-only view of one vertex at the program's timestamp.
class NodeView {
 public:
  NodeView(const Node* node, const RefinableTimestamp& ts,
           const OrderFn& order)
      : node_(node), ts_(&ts), order_(&order) {}

  /// False if the vertex does not exist at the program's timestamp (never
  /// created here, created later, or already deleted).
  bool Exists() const {
    return node_ != nullptr && node_->VisibleAt(*ts_, *order_);
  }
  NodeId id() const { return node_ == nullptr ? kInvalidNodeId : node_->id; }

  std::optional<std::string> GetProperty(std::string_view key) const {
    if (!Exists()) return std::nullopt;
    return node_->props.ValueAt(key, *ts_, *order_);
  }
  bool CheckProperty(std::string_view key, std::string_view value) const {
    return Exists() && node_->props.Check(key, value, *ts_, *order_);
  }
  std::vector<std::pair<std::string, std::string>> Properties() const {
    if (!Exists()) return {};
    return node_->props.SnapshotAt(*ts_, *order_);
  }

  /// All out-edges visible at the program's timestamp. Allocates the
  /// returned vector; hot loops should prefer ForEachEdge.
  std::vector<EdgeView> Edges() const {
    std::vector<EdgeView> out;
    if (!Exists()) return out;
    for (const auto& [eid, e] : node_->out_edges) {
      if (e.VisibleAt(*ts_, *order_)) out.emplace_back(&e, ts_, order_);
    }
    return out;
  }

  /// Calls `fn(const EdgeView&)` for every out-edge visible at the
  /// program's timestamp, without materializing a vector -- the
  /// iteration path for per-vertex hot loops (every standard program
  /// uses it).
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    if (!Exists()) return;
    for (const auto& [eid, e] : node_->out_edges) {
      if (e.VisibleAt(*ts_, *order_)) fn(EdgeView(&e, ts_, order_));
    }
  }
  std::size_t OutDegree() const {
    return Exists() ? node_->OutDegreeAt(*ts_, *order_) : 0;
  }

  const RefinableTimestamp& timestamp() const { return *ts_; }

 private:
  const Node* node_;
  const RefinableTimestamp* ts_;
  const OrderFn* order_;
};

/// One propagation target produced by a vertex-level execution.
struct NextHop {
  NodeId node = kInvalidNodeId;
  std::string params;
};

/// Output of one vertex-level execution.
struct ProgramOutput {
  std::vector<NextHop> next_hops;
  /// If set, collected into the client-visible result list.
  std::optional<std::string> return_value;
};

/// Interface implemented by every node program. Implementations must be
/// stateless (all per-query state goes through `state`): one instance
/// serves all concurrent executions.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  virtual std::string_view name() const = 0;
  /// Vertex-level computation (the `node_program` function of Fig 3).
  /// `state` is this program instance's state at this vertex; it holds
  /// no value on first visit.
  virtual void Run(const NodeView& node, const std::string& params,
                   std::any* state, ProgramOutput* out) const = 0;
  /// Declares that, for an execution started with `start_params`, once
  /// this program has set state at a vertex any further hop to that
  /// vertex is a no-op REGARDLESS of its params (the "if visited then
  /// return" pattern of the paper's Fig 3 BFS). Shards then prune hops
  /// to visited vertices at ingress instead of re-dispatching them --
  /// the dominant hop volume in fan-in-heavy traversals. The
  /// coordinator asks once per execution (per start hop) and the
  /// answer rides in every hop batch, so it must depend only on
  /// propagation-invariant params. Programs whose revisits depend on
  /// per-hop params (shortest path's smaller distance, k-hop's larger
  /// budget, label-prop's smaller label, any depth-budgeted traversal
  /// where a later hop can be shallower) must keep the default false
  /// -- decentralized execution is not level-synchronous, so a vertex
  /// may be first reached via a LONGER path.
  virtual bool VisitOnce(const std::string& start_params) const {
    (void)start_params;
    return false;
  }
};

/// Name -> program lookup shared by all shards of a deployment.
class ProgramRegistry {
 public:
  /// Registers a program; replaces any previous program of the same name.
  void Register(std::unique_ptr<NodeProgram> program);
  const NodeProgram* Find(std::string_view name) const;
  std::vector<std::string> Names() const;

  /// Registry preloaded with the standard programs in src/programs/.
  static std::shared_ptr<ProgramRegistry> WithStandardPrograms();

 private:
  std::unordered_map<std::string, std::unique_ptr<NodeProgram>> programs_;
};

/// Client-visible result of a node program execution.
struct ProgramResult {
  /// (vertex, return blob) pairs. Within one shard returns follow visit
  /// order; across shards they arrive in accounting order, which is not
  /// deterministic -- order-sensitive consumers sort by vertex. A
  /// program whose revisits return again (shortest path, label prop)
  /// yields a per-vertex return STREAM; consumers reduce it per vertex
  /// (min / last-wins), exactly as those programs document.
  std::vector<std::pair<NodeId, std::string>> returns;
  std::uint64_t vertices_visited = 0;
  /// Shard drain cycles that executed hops for this program (the
  /// decentralized analog of the old coordinator wave count; a program
  /// that crosses a shard boundary takes >= 2).
  std::uint64_t waves = 0;
  /// Total hops consumed (executed + coalesced) across all shards.
  std::uint64_t hops = 0;
  /// Shard-to-shard hop batch messages -- traffic the coordinator never
  /// sees (zero means the traversal stayed on its seed shards).
  std::uint64_t forwarded_batches = 0;
  /// Accounting messages the coordinator received: its total inbound
  /// message count for the program (the old barrier design paid
  /// shards-touched messages per wave plus a blocking round trip each).
  std::uint64_t coordinator_msgs = 0;
  RefinableTimestamp timestamp;
};

}  // namespace weaver
