#include "core/transaction.h"

#include <utility>

#include "core/weaver.h"
#include "graph/graph_store.h"

namespace weaver {

namespace {

Status MovedFromError() {
  return Status::FailedPrecondition(
      "transaction is invalid (default-constructed or moved-from)");
}

}  // namespace

Transaction::Transaction(Weaver* db, KvTransaction kvtx)
    : db_(db), kvtx_(std::move(kvtx)) {}

Transaction::Transaction(Transaction&& other) noexcept
    : db_(std::exchange(other.db_, nullptr)),
      kvtx_(std::move(other.kvtx_)),
      ops_(std::move(other.ops_)),
      created_placements_(std::move(other.created_placements_)),
      ts_(std::move(other.ts_)),
      committed_(std::exchange(other.committed_, false)) {
  other.ops_.clear();
  other.created_placements_.clear();
}

Transaction& Transaction::operator=(Transaction&& other) noexcept {
  if (this != &other) {
    db_ = std::exchange(other.db_, nullptr);
    kvtx_ = std::move(other.kvtx_);
    ops_ = std::move(other.ops_);
    created_placements_ = std::move(other.created_placements_);
    ts_ = std::move(other.ts_);
    committed_ = std::exchange(other.committed_, false);
    other.ops_.clear();
    other.created_placements_.clear();
  }
  return *this;
}

NodeId Transaction::CreateNode() {
  if (db_ == nullptr) return kInvalidNodeId;
  const NodeId id = db_->AllocateNodeId();
  ops_.push_back(GraphOp::CreateNode(id));
  created_placements_[id] = db_->PlaceNewNode(id);
  return id;
}

Status Transaction::CreateNodeWithId(NodeId id) {
  if (db_ == nullptr) return MovedFromError();
  if (id == kInvalidNodeId) return Status::InvalidArgument("invalid id");
  db_->ReserveNodeId(id);
  ops_.push_back(GraphOp::CreateNode(id));
  created_placements_[id] = db_->PlaceNewNode(id);
  return Status::Ok();
}

Status Transaction::DeleteNode(NodeId id) {
  if (db_ == nullptr) return MovedFromError();
  ops_.push_back(GraphOp::DeleteNode(id));
  return Status::Ok();
}

EdgeId Transaction::CreateEdge(NodeId from, NodeId to) {
  if (db_ == nullptr) return kInvalidEdgeId;
  const EdgeId eid = db_->AllocateEdgeId();
  ops_.push_back(GraphOp::CreateEdge(eid, from, to));
  return eid;
}

Status Transaction::DeleteEdge(NodeId from, EdgeId edge) {
  if (db_ == nullptr) return MovedFromError();
  ops_.push_back(GraphOp::DeleteEdge(from, edge));
  return Status::Ok();
}

Status Transaction::AssignNodeProperty(NodeId id, std::string key,
                                       std::string value) {
  if (db_ == nullptr) return MovedFromError();
  ops_.push_back(
      GraphOp::AssignNodeProp(id, std::move(key), std::move(value)));
  return Status::Ok();
}

Status Transaction::RemoveNodeProperty(NodeId id, std::string key) {
  if (db_ == nullptr) return MovedFromError();
  ops_.push_back(GraphOp::RemoveNodeProp(id, std::move(key)));
  return Status::Ok();
}

Status Transaction::AssignEdgeProperty(NodeId from, EdgeId edge,
                                       std::string key, std::string value) {
  if (db_ == nullptr) return MovedFromError();
  ops_.push_back(GraphOp::AssignEdgeProp(from, edge, std::move(key),
                                         std::move(value)));
  return Status::Ok();
}

Status Transaction::RemoveEdgeProperty(NodeId from, EdgeId edge,
                                       std::string key) {
  if (db_ == nullptr) return MovedFromError();
  ops_.push_back(GraphOp::RemoveEdgeProp(from, edge, std::move(key)));
  return Status::Ok();
}

CommitPayload Transaction::DetachForSubmit() {
  CommitPayload payload;
  payload.ops = std::move(ops_);
  payload.created_placements.assign(created_placements_.begin(),
                                    created_placements_.end());
  payload.read_set = kvtx_.ExportReads();
  // The local OCC context is done: the executing side resumes validation
  // from the exported versions, so holding ours open would only pin
  // store state.
  kvtx_.Abort();
  db_ = nullptr;
  ops_.clear();
  created_placements_.clear();
  return payload;
}

Result<NodeSnapshot> Transaction::GetNode(NodeId id) {
  if (db_ == nullptr) return MovedFromError();
  auto blob = kvtx_.Get(kv_keys::VertexData(id));
  if (!blob.ok()) return blob.status();
  auto node = GraphStore::DeserializeNode(*blob);
  if (!node.ok()) return node.status();

  NodeSnapshot snap;
  snap.id = id;
  snap.exists = !node->deleted.valid();
  if (!snap.exists) return snap;
  for (const auto& v : node->props.versions()) {
    if (!v.deleted.valid()) snap.properties.emplace_back(v.key, v.value);
  }
  for (const auto& [eid, e] : node->out_edges) {
    if (e.deleted.valid()) continue;
    EdgeSnapshot es;
    es.id = eid;
    es.to = e.to;
    for (const auto& v : e.props.versions()) {
      if (!v.deleted.valid()) es.properties.emplace_back(v.key, v.value);
    }
    snap.edges.push_back(std::move(es));
  }
  return snap;
}

Result<bool> Transaction::NodeExists(NodeId id) {
  if (db_ == nullptr) return MovedFromError();
  auto blob = kvtx_.Get(kv_keys::VertexData(id));
  if (blob.status().IsNotFound()) return false;
  if (!blob.ok()) return blob.status();
  auto node = GraphStore::DeserializeNode(*blob);
  if (!node.ok()) return node.status();
  return !node->deleted.valid();
}

Status RetryTransaction(const std::function<Transaction()>& begin,
                        const std::function<Status(Transaction*)>& commit,
                        const std::function<Status(Transaction&)>& body,
                        int max_attempts) {
  Status last = Status::Internal("no attempts made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Transaction tx = begin();
    Status st = body(tx);
    if (!st.ok()) return st;  // application error: do not retry
    st = commit(&tx);
    if (st.ok()) return st;
    if (!st.IsAborted()) return st;  // non-retryable
    last = st;
  }
  return last;
}

}  // namespace weaver
