#include "core/transaction.h"

#include "core/weaver.h"
#include "graph/graph_store.h"

namespace weaver {

Transaction::Transaction(Weaver* db, KvTransaction kvtx)
    : db_(db), kvtx_(std::move(kvtx)) {}

NodeId Transaction::CreateNode() {
  const NodeId id = db_->AllocateNodeId();
  ops_.push_back(GraphOp::CreateNode(id));
  created_placements_[id] = db_->PlaceNewNode(id);
  return id;
}

Status Transaction::CreateNodeWithId(NodeId id) {
  if (id == kInvalidNodeId) return Status::InvalidArgument("invalid id");
  db_->ReserveNodeId(id);
  ops_.push_back(GraphOp::CreateNode(id));
  created_placements_[id] = db_->PlaceNewNode(id);
  return Status::Ok();
}

Status Transaction::DeleteNode(NodeId id) {
  ops_.push_back(GraphOp::DeleteNode(id));
  return Status::Ok();
}

EdgeId Transaction::CreateEdge(NodeId from, NodeId to) {
  const EdgeId eid = db_->AllocateEdgeId();
  ops_.push_back(GraphOp::CreateEdge(eid, from, to));
  return eid;
}

Status Transaction::DeleteEdge(NodeId from, EdgeId edge) {
  ops_.push_back(GraphOp::DeleteEdge(from, edge));
  return Status::Ok();
}

Status Transaction::AssignNodeProperty(NodeId id, std::string key,
                                       std::string value) {
  ops_.push_back(
      GraphOp::AssignNodeProp(id, std::move(key), std::move(value)));
  return Status::Ok();
}

Status Transaction::RemoveNodeProperty(NodeId id, std::string key) {
  ops_.push_back(GraphOp::RemoveNodeProp(id, std::move(key)));
  return Status::Ok();
}

Status Transaction::AssignEdgeProperty(NodeId from, EdgeId edge,
                                       std::string key, std::string value) {
  ops_.push_back(GraphOp::AssignEdgeProp(from, edge, std::move(key),
                                         std::move(value)));
  return Status::Ok();
}

Status Transaction::RemoveEdgeProperty(NodeId from, EdgeId edge,
                                       std::string key) {
  ops_.push_back(GraphOp::RemoveEdgeProp(from, edge, std::move(key)));
  return Status::Ok();
}

Result<NodeSnapshot> Transaction::GetNode(NodeId id) {
  auto blob = kvtx_.Get(kv_keys::VertexData(id));
  if (!blob.ok()) return blob.status();
  auto node = GraphStore::DeserializeNode(*blob);
  if (!node.ok()) return node.status();

  NodeSnapshot snap;
  snap.id = id;
  snap.exists = !node->deleted.valid();
  if (!snap.exists) return snap;
  for (const auto& v : node->props.versions()) {
    if (!v.deleted.valid()) snap.properties.emplace_back(v.key, v.value);
  }
  for (const auto& [eid, e] : node->out_edges) {
    if (e.deleted.valid()) continue;
    EdgeSnapshot es;
    es.id = eid;
    es.to = e.to;
    for (const auto& v : e.props.versions()) {
      if (!v.deleted.valid()) es.properties.emplace_back(v.key, v.value);
    }
    snap.edges.push_back(std::move(es));
  }
  return snap;
}

Result<bool> Transaction::NodeExists(NodeId id) {
  auto blob = kvtx_.Get(kv_keys::VertexData(id));
  if (blob.status().IsNotFound()) return false;
  if (!blob.ok()) return blob.status();
  auto node = GraphStore::DeserializeNode(*blob);
  if (!node.ok()) return node.status();
  return !node->deleted.valid();
}

}  // namespace weaver
