// Wire message schemas exchanged over the MessageBus between gatekeepers,
// shard servers, and node-program coordinators.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "core/graph_op.h"
#include "core/node_program.h"
#include "core/transaction.h"
#include "order/timestamp.h"
#include "vclock/vclock.h"

namespace weaver {

enum MsgTag : std::uint32_t {
  kMsgTx = 1,        // gatekeeper -> shard: committed transaction slice
  kMsgNop = 2,       // gatekeeper -> shard: queue-head keep-alive (§4.2)
  kMsgAnnounce = 3,  // gatekeeper -> gatekeeper: vector clock announce
  kMsgWave = 4,      // coordinator -> shard: node program wave
  kMsgEndProgram = 5,  // coordinator -> shard: program done, GC its state
  kMsgGc = 6,        // deployment -> shard: multi-version GC watermark
  kMsgStop = 7,      // deployment -> shard: shut down event loop
  kMsgClientCommit = 8,   // session -> gatekeeper: async commit request
  kMsgClientProgram = 9,  // session -> gatekeeper: async node program
};

/// Committed transaction: ops are the slice destined for the receiving
/// shard (possibly empty -- an empty slice still advances the queue head,
/// doubling as a NOP for uninvolved shards).
struct TxMessage {
  RefinableTimestamp ts;
  std::vector<GraphOp> ops;
};

struct NopMessage {
  RefinableTimestamp ts;
};

struct AnnounceMessage {
  VectorClock clock;
  GatekeeperId from = 0;
};

/// Result of executing one program wave on one shard.
struct WaveResult {
  ShardId shard = 0;
  std::vector<NextHop> next_hops;
  std::vector<std::pair<NodeId, std::string>> returns;
  std::uint64_t vertices_visited = 0;
};

/// One wave of a node program: execute at `starts` when the shard's delay
/// rule (paper §4.1) admits the program's timestamp. The sink callback
/// carries the result back to the coordinator (in-process stand-in for the
/// response message).
struct WaveMessage {
  ProgramId program_id = 0;
  RefinableTimestamp ts;
  std::string program_name;
  std::vector<NextHop> starts;
  std::function<void(WaveResult)> sink;
};

struct EndProgramMessage {
  ProgramId program_id = 0;
};

struct GcMessage {
  RefinableTimestamp watermark;
};

// --- Client ingress (sessions -> gatekeepers) -------------------------------
//
// Sessions submit work as messages on the bus instead of calling into
// coordinator internals, so many requests from one client can be in flight
// at once (pipelining) and a future real transport can carry the same
// schema across processes. Responses ride back through the sink callback,
// the same in-process stand-in WaveMessage uses for wave results.
// Commit requests that share a session_id are executed in channel
// (= submission) order by the gatekeeper's client ingress; requests from
// different sessions -- and program requests generally -- may interleave
// freely.

/// Async commit: the transaction is moved into the request; the commit
/// timestamp comes back in the CommitResult because the submitter can no
/// longer ask the transaction.
struct ClientCommitMessage {
  /// Lane key on the gatekeeper ingress. Submission order within a
  /// session is the bus channel order (channel_seq); there is no
  /// separate sequence field.
  std::uint64_t session_id = 0;
  /// True when the submitter already accounted for the simulated
  /// backing-store round trip (blocking wrappers sleep client-side, as the
  /// pre-session API did). Pipelined submissions leave this false and the
  /// ingress amortizes one round trip across each drained batch.
  bool delay_paid = false;
  Transaction tx;
  std::function<void(CommitResult)> sink;
};

/// Async node program: executed by the receiving gatekeeper's ingress
/// worker, which doubles as the wave-loop coordinator (the paper's
/// topology: gatekeepers coordinate node programs). Programs read
/// consistent snapshots and carry no submission-order promise -- they run
/// on any free worker, so one session can have many in flight. A client
/// that needs a program to observe its own commit waits for the commit
/// first.
struct ClientProgramMessage {
  std::uint64_t session_id = 0;
  std::string program_name;
  std::vector<NextHop> starts;
  std::function<void(Result<ProgramResult>)> sink;
};

}  // namespace weaver
