// Wire message schemas exchanged over the MessageBus between gatekeepers,
// shard servers, node-program coordinators, and client sessions.
//
// Every schema here is PLAIN DATA -- ids, timestamps, byte strings,
// vectors -- with an Encode/Decode pair in core/message_codec.h, so a
// deployment can carry any of them across a process boundary
// (docs/transport.md). In particular there are no callbacks: client
// requests carry a reply endpoint + request id, and the gatekeeper
// answers with ClientCommitReply / ClientProgramReply messages that the
// session's reply endpoint routes back to the waiting Pending<T>
// (docs/client_api.md). Node-program params, per-hop state, and return
// values are opaque byte strings serialized by the programs themselves
// (core/node_program.h), exactly as they would be on a real wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/graph_op.h"
#include "core/node_program.h"
#include "net/bus.h"
#include "obs/metrics.h"
#include "order/timestamp.h"
#include "vclock/vclock.h"

namespace weaver {

enum MsgTag : std::uint32_t {
  kMsgTx = 1,        // gatekeeper -> shard: committed transaction slice
  kMsgNop = 2,       // gatekeeper -> shard: queue-head keep-alive (§4.2)
  kMsgAnnounce = 3,  // gatekeeper -> gatekeeper: vector clock announce
  kMsgWaveHops = 4,  // coordinator/shard -> shard: batched program hops
  kMsgEndProgram = 5,  // coordinator -> shard: program done, GC its state
  kMsgGc = 6,        // deployment -> shard: multi-version GC watermark
  kMsgStop = 7,      // deployment -> shard: shut down event loop
  kMsgClientCommit = 8,   // session -> gatekeeper: async commit request
  kMsgClientProgram = 9,  // session -> gatekeeper: async node program(s)
  kMsgWaveAccounting = 10,  // shard -> coordinator: program progress delta
  kMsgClientCommitReply = 11,   // gatekeeper -> session: commit outcome
  kMsgClientProgramReply = 12,  // gatekeeper -> session: program outcome
  kMsgMetricsRequest = 13,  // parent -> shard server: snapshot your registry
  kMsgMetricsReport = 14,   // shard server -> parent: the snapshot
  kMsgShardReset = 15,  // supervisor -> surviving shard: peer seq state reset
  kMsgShardResetAck = 16,  // surviving shard -> supervisor: reset done
  kMsgPartitionReplay = 17,  // supervisor -> respawned shard: vertex blobs
  kMsgOracleRequest = 18,  // shard/parent -> oracle service: batched ops
  kMsgOracleReply = 19,    // oracle service -> requester: batched decisions
  kMsgJoinRequest = 20,  // joining serverd -> coordinator: handshake open
  kMsgJoinAck = 21,      // coordinator -> joining serverd: verdict
  kMsgRoleAssign = 22,   // coordinator -> joining serverd: role + config
  kMsgStoreCommit = 23,  // gatekeeper process -> parent: apply to kv store
  kMsgStoreCommitReply = 24,  // parent -> gatekeeper process: apply outcome
  kMsgGkProgramStart = 25,  // gatekeeper process -> parent: run a program
  kMsgGkEpochAdvance = 26,  // parent -> gatekeeper process: epoch bump
  kMsgGkWatermark = 27,  // gatekeeper process -> parent: GC watermark
};

/// Committed transaction: ops are the slice destined for the receiving
/// shard (possibly empty -- an empty slice still advances the queue head,
/// doubling as a NOP for uninvolved shards).
struct TxMessage {
  RefinableTimestamp ts;
  std::vector<GraphOp> ops;
};

struct NopMessage {
  RefinableTimestamp ts;
};

struct AnnounceMessage {
  VectorClock clock;
  GatekeeperId from = 0;
};

// --- Decentralized node-program execution (docs/node_programs.md) ----------
//
// Node programs propagate shard-to-shard, scatter/gather style (paper
// §2.3, §4.5): a shard executes the hops it owns and forwards spawned
// hops DIRECTLY to the owning peer shard -- the coordinator only seeds
// the start hops and detects quiescence from per-shard accounting
// deltas (terminate when hops consumed == hops spawned + starts, the
// credit-counting argument: a hop in flight has been counted spawned
// but not yet consumed).

/// A batch of node-program hops addressed to one shard, sent by the
/// coordinator (the start wave) or by a peer shard (forwarded hops; at
/// most one batch per peer per drain cycle). The timestamp, program
/// name, and coordinator address ride along so any shard can install
/// its per-(shard, program) ProgramContext on first contact -- after
/// that the receiver keys everything off program_id alone.
struct WaveHopBatchMessage {
  ProgramId program_id = 0;
  RefinableTimestamp ts;
  std::string program_name;
  /// Where WaveAccountingMessages for this program go.
  EndpointId coordinator = 0;
  /// Visited-vertex pruning is sound for this execution
  /// (NodeProgram::VisitOnce over the start params). Decided once by
  /// the coordinator at seed time and propagated in every batch so all
  /// shards agree.
  bool visit_once = false;
  std::vector<NextHop> hops;
};

/// Progress delta for one drain cycle of one program on one shard. The
/// shard sends this BEFORE forwarding the cycle's spawned hop batches,
/// so the coordinator registers the spawn credits before any downstream
/// shard can report consuming them (the inline-delivery bus makes that
/// ordering causal; the wire transport preserves it with per-channel
/// sequence numbers plus in-order hub forwarding -- docs/transport.md).
struct WaveAccountingMessage {
  ProgramId program_id = 0;
  ShardId shard = 0;
  /// Hops executed this cycle plus duplicates coalesced at ingress
  /// (coalesced hops were counted spawned by their sender and will never
  /// execute, so they are consumed on arrival).
  std::uint64_t hops_consumed = 0;
  /// Hops this shard created and queued locally or forwarded to peers.
  std::uint64_t hops_spawned = 0;
  std::uint64_t vertices_visited = 0;
  /// Drain cycles this delta covers (always 1 today; the ProgramResult
  /// "waves" analog).
  std::uint64_t cycles = 0;
  /// Shard-to-shard hop batch messages sent this cycle.
  std::uint64_t forwarded_batches = 0;
  std::vector<std::pair<NodeId, std::string>> returns;
  /// Non-OK when the shard could not forward hops (e.g. a peer shard is
  /// detached); the coordinator aborts the program with this status.
  Status error;
};

struct EndProgramMessage {
  ProgramId program_id = 0;
};

struct GcMessage {
  RefinableTimestamp watermark;
};

// --- Client ingress (sessions <-> gatekeepers) ------------------------------
//
// Sessions submit work as messages on the bus instead of calling into
// coordinator internals, so many requests from one client can be in
// flight at once (pipelining) and a real transport can carry the same
// schema across processes. Responses come back as reply messages to the
// endpoint named in the request; request ids correlate them. Commit
// requests that share a session_id are executed in channel
// (= submission) order by the gatekeeper's client ingress; requests from
// different sessions -- and program requests generally -- may interleave
// freely.

/// Async commit. The submitter's transaction is detached into plain
/// fields (Transaction::DetachForSubmit): the buffered write ops, the
/// tentative placements of created vertices, and the OCC read set (key ->
/// observed version). The executing gatekeeper rehydrates a transaction
/// against its own backing store (KvStore::Resume) and validates the read
/// versions at commit, so client-side reads keep their serializable
/// guarantee across a process boundary -- version tokens travel with the
/// transaction, Warp style.
struct ClientCommitMessage {
  /// Lane key on the gatekeeper ingress. Submission order within a
  /// session is the bus channel order (channel_seq); there is no
  /// separate sequence field.
  std::uint64_t session_id = 0;
  /// Correlates the ClientCommitReply; unique per session endpoint.
  std::uint64_t request_id = 0;
  /// Where the reply goes (the session's bus endpoint).
  EndpointId reply_to = 0;
  /// True when the submitter already accounted for the simulated
  /// backing-store round trip (blocking wrappers sleep client-side, as the
  /// pre-session API did). Pipelined submissions leave this false and the
  /// ingress amortizes one round trip across each drained batch.
  bool delay_paid = false;
  std::vector<GraphOp> ops;
  std::vector<std::pair<NodeId, ShardId>> created_placements;
  std::vector<std::pair<std::string, std::uint64_t>> read_set;
};

/// One node-program invocation inside a ClientProgramMessage.
struct ProgramRequest {
  std::uint64_t request_id = 0;
  std::string program_name;
  std::vector<NextHop> starts;
  /// Read-your-writes fence (docs/client_api.md#read-your-writes): when
  /// valid, the executing gatekeeper merges this clock before issuing the
  /// program timestamp, so the program's snapshot observes the fenced
  /// commit. Sessions in SetReadYourWrites(true) mode fill it with their
  /// last committed timestamp.
  RefinableTimestamp fence;
};

/// Async node program(s): executed by the receiving gatekeeper's ingress,
/// which doubles as the node-program coordinator (the paper's topology:
/// gatekeepers coordinate node programs). Programs read consistent
/// snapshots and carry no submission-order promise -- each request runs
/// on any free worker, so one session (or one batched message) can have
/// many in flight. A message may carry several requests: a batched
/// fan-out crosses the bus once and fans out inside the ingress.
struct ClientProgramMessage {
  std::uint64_t session_id = 0;
  EndpointId reply_to = 0;
  std::vector<ProgramRequest> requests;
};

/// Commit outcome, addressed to the requesting session's reply endpoint.
/// Carries the commit timestamp because the submitter detached its
/// transaction into the request and can no longer ask it.
struct ClientCommitReplyMessage {
  std::uint64_t session_id = 0;
  std::uint64_t request_id = 0;
  Status status;
  RefinableTimestamp timestamp;
};

/// Node-program outcome for one ProgramRequest. `result` is meaningful
/// only when `status` is OK.
struct ClientProgramReplyMessage {
  std::uint64_t session_id = 0;
  std::uint64_t request_id = 0;
  Status status;
  ProgramResult result;
};

// --- Observability (docs/observability.md) ----------------------------------

/// Asks a shard-server process to snapshot its metrics registry. The
/// reply is addressed to `reply_to` -- in practice the parent's program
/// coordinator, the highest endpoint id a child can address
/// (coord/serverd.h layout contract), whose handler dispatches on the
/// reply tag.
struct MetricsRequestMessage {
  std::uint64_t request_id = 0;
  EndpointId reply_to = 0;
};

/// One process's registry snapshot. `inbox_depth` duplicates the shard's
/// own "shardN.inbox_depth" gauge as a first-class field because the
/// parent feeds it straight into MessageBus::NoteRemoteDepth -- the
/// remote-endpoint half of QueueDepth() -- without a name lookup.
struct MetricsReportMessage {
  std::uint64_t request_id = 0;
  ShardId shard = 0;
  std::uint64_t inbox_depth = 0;
  obs::MetricsSnapshot snapshot;
};

/// `shard` value in reports (and reset acks) from weaver-oracled: the
/// oracle service is not a shard, so consumers indexing by shard id must
/// skip it. Also never a valid spare assignment (coord/serverd.h).
constexpr ShardId kOracleMetricsSource = 0xFFFFFFFFu;

// --- Shard-process recovery (docs/fault_tolerance.md) -----------------------
//
// When a shard process dies, its wire sequence state dies with it: the
// respawned process starts every channel at seq 1, and every SURVIVING
// process still holds the old counters toward the dead endpoint. The
// supervisor heals this with an explicit reset round: each survivor
// resets its bus state toward `target` (on its event loop, serialized
// with its own hop forwarding) and acks; only after every ack does the
// supervisor attach the replacement transport.

/// Supervisor -> surviving shard server: forget all wire sequence state
/// (send channels and receive expectations) toward endpoint `target`.
struct ShardResetMessage {
  EndpointId target = 0;
  /// Correlates the ack; one recovery uses one token for all survivors.
  std::uint64_t token = 0;
  EndpointId reply_to = 0;
};

/// Surviving shard server -> supervisor: reset applied.
struct ShardResetAckMessage {
  ShardId shard = 0;
  std::uint64_t token = 0;
};

/// Supervisor -> respawned shard server: a batch of the partition's
/// vertices read back from the durable backing store (the gatekeepers
/// commit to the store BEFORE forwarding slices, so an acknowledged
/// write is always here). Blobs are GraphStore::SerializeNode output.
struct PartitionReplayMessage {
  ShardId shard = 0;
  std::vector<std::pair<NodeId, std::string>> vertices;
};

// --- Timeline-oracle service (docs/oracle_service.md) -----------------------
//
// When the timeline oracle runs as its own process, shard servers and the
// parent talk to it with batched request/reply messages. Every op in a
// request is applied in order and answered positionally in the reply, so
// one round trip refines a whole wave's worth of concurrent pairs. Enum
// fields travel as raw bytes (the schema layer stays plain data, like
// GraphOp); decoders validate the ranges.

/// One oracle operation inside an OracleRequestMessage.
struct OracleOp {
  enum Type : std::uint8_t {
    kOrderPair = 0,    // order a vs b, establishing per `prefer` if needed
    kAssignEdge = 1,   // establish happens-before a -> b (cycle-checked)
    kCollect = 2,      // GC: drop events whose clocks precede `watermark`
    kSync = 3,         // dump every explicit edge (replica rehydration)
  };
  std::uint8_t type = kOrderPair;
  RefinableTimestamp a;
  RefinableTimestamp b;
  /// OrderPreference for kOrderPair (0 = prefer a first, 1 = prefer b).
  std::uint8_t prefer = 0;
  /// kCollect only.
  VectorClock watermark;
};

/// Batched oracle ops. `reply_to` is the requester's oracle-client reply
/// endpoint (coord/serverd.h layout contract); `request_id` correlates
/// the reply within that endpoint.
struct OracleRequestMessage {
  std::uint64_t request_id = 0;
  EndpointId reply_to = 0;
  std::vector<OracleOp> ops;
};

/// Positional outcome of one OracleOp. `order` is a ClockOrder byte and
/// is meaningful for kOrderPair (never kConcurrent); `status` carries a
/// kAssignEdge cycle rejection (FailedPrecondition) or per-op failure.
struct OracleDecision {
  std::uint8_t order = 0;
  Status status;
};

/// Reply to one OracleRequestMessage: `decisions` answers the ops
/// positionally; `edges` is the full explicit-edge dump when the request
/// contained a kSync op (empty otherwise).
struct OracleReplyMessage {
  std::uint64_t request_id = 0;
  Status status;
  std::vector<OracleDecision> decisions;
  std::vector<std::pair<RefinableTimestamp, RefinableTimestamp>> edges;
};

// --- Cluster bootstrap (docs/transport.md#cluster-bootstrap) ----------------
//
// A standalone weaver-serverd process joins a running coordinator over
// TCP with a three-message handshake: it sends a JoinRequest on its
// fresh connection, the coordinator answers with a JoinAck (accept or a
// refusal status), and an accepted joiner then receives a RoleAssign
// carrying its role, shard assignment, cluster epoch, and the full
// server configuration -- so the binary needs nothing on its command
// line beyond the coordinator's address and a join token. These three
// schemas travel as ordinary CRC-sealed wire frames but DIRECTLY on the
// raw connection, before the socket is adopted into any MessageBus
// (src/cluster/handshake.h); they still get codec + roundtrip coverage
// like every bus schema.

/// Schema-level codec version carried inside JoinRequest/JoinAck, checked
/// EXACTLY at join time: wire::kWireVersion guards the frame layout, this
/// guards the payload schemas on top of it. Bump when any schema changes
/// incompatibly.
constexpr std::uint32_t kWireCodecVersion = 2;

/// What a joining process comes up as after the handshake.
enum class NodeRole : std::uint8_t {
  kShard = 0,
  kOracle = 1,
  kGatekeeper = 2,
  kSpare = 3,
};

/// `shard_id` wildcard in a JoinRequest: "assign me any open slot of my
/// requested role".
constexpr std::uint32_t kAnyShard = 0xFFFFFFFFu;

/// Joining serverd -> coordinator listener. `cluster_epoch` is the epoch
/// the joiner believes current (0 = no expectation, the fresh-exec case);
/// a nonzero stale value is fenced with FailedPrecondition so a process
/// respawned against an old incarnation cannot rejoin.
struct JoinRequestMessage {
  std::uint32_t codec_version = kWireCodecVersion;
  std::uint32_t cluster_epoch = 0;
  NodeRole role = NodeRole::kSpare;
  std::uint32_t shard_id = kAnyShard;
  /// Shared secret for this cluster instance (the supervisor passes it to
  /// exec'd children; shells read it off the coordinator's stdout).
  std::string token;
  std::uint64_t pid = 0;
};

/// Coordinator -> joiner: accept (OK) or refusal. The coordinator's own
/// codec version and epoch ride along either way so a refused joiner can
/// log WHY (version skew, stale epoch) without guessing.
struct JoinAckMessage {
  Status status;
  std::uint32_t codec_version = kWireCodecVersion;
  std::uint32_t cluster_epoch = 0;
};

/// Coordinator -> accepted joiner: everything the process needs to come
/// up in its role. Mirrors serverd::ShardServerOptions field for field
/// (coord/serverd.h owns the authoritative defaults); `cluster_epoch`
/// seeds gatekeeper clocks so a respawned gatekeeper starts past every
/// pre-crash timestamp.
struct RoleAssignMessage {
  NodeRole role = NodeRole::kSpare;
  std::uint32_t shard_id = 0;
  std::uint32_t cluster_epoch = 0;
  /// Shard role only: sync the per-process oracle replica before serving
  /// (the respawn-after-crash path).
  bool rehydrate = false;
  // -- serverd::ShardServerOptions image ------------------------------------
  std::uint32_t num_shards = 0;
  std::uint32_t num_gatekeepers = 0;
  std::uint64_t inbox_capacity = 0;
  std::uint64_t queue_high_water = 0;
  std::uint64_t max_hops_per_cycle = 0;
  bool remote_oracle = false;
  bool remote_gatekeepers = false;
  std::uint64_t oracle_rpc_timeout_micros = 0;
  std::uint64_t oracle_total_deadline_micros = 0;
  /// Oracle role only: where the durable changelog lives (empty =
  /// memory-only) and its journaling knobs. An exec'd respawn replays
  /// this directory, so it must travel in the assignment.
  std::string oracle_data_dir;
  std::uint64_t oracle_snapshot_every = 0;
  std::uint8_t oracle_fsync = 0;  // storage FsyncPolicy value
  // -- gatekeeper role knobs -------------------------------------------------
  std::uint64_t tau_micros = 0;
  std::uint64_t nop_period_micros = 0;
  std::uint64_t client_workers = 0;
  std::uint64_t client_batch = 0;
  std::uint64_t client_lane_capacity = 0;
  std::uint64_t max_inflight_programs = 0;
  std::uint64_t nop_high_water = 0;
  std::uint64_t announce_capacity = 0;
};

// --- Out-of-parent gatekeepers (docs/transport.md#cluster-bootstrap) --------
//
// When gatekeepers run as their own processes, the vector clock, slot
// sequencer, timers, and client ingress all live in the child; only the
// durable kv apply (OCC validation + write-back) stays with the parent,
// which owns the backing store. The child drives each commit attempt as
// a StoreCommit RPC to its parent-side agent endpoint and fans the
// committed slices out to the shards itself; node programs are handed to
// the parent coordinator with GkProgramStart (the parent owns locator +
// quiescence accounting).

/// Gatekeeper process -> parent agent: validate + apply one commit
/// attempt at the child-issued timestamp. `request_id` correlates the
/// reply on the child's control endpoint.
struct StoreCommitMessage {
  GatekeeperId gatekeeper = 0;
  std::uint64_t request_id = 0;
  RefinableTimestamp ts;
  /// The simulated backing-store round trip is still owed for this
  /// attempt (the parent pays it inside the apply, where the store is).
  bool pay_delay = false;
  std::vector<GraphOp> ops;
  std::vector<std::pair<NodeId, ShardId>> created_placements;
  std::vector<std::pair<std::string, std::uint64_t>> read_set;
};

/// Parent agent -> gatekeeper process: outcome of one StoreCommit.
/// `retry_timestamp` means a last-update conflict: the child merges
/// `conflict_clock`, issues a fresh timestamp, and retries the attempt --
/// the same loop an in-process gatekeeper runs.
struct StoreCommitReplyMessage {
  GatekeeperId gatekeeper = 0;
  std::uint64_t request_id = 0;
  Status status;
  bool retry_timestamp = false;
  bool kv_conflict = false;
  VectorClock conflict_clock;
};

/// Gatekeeper process -> parent coordinator: run a node program at the
/// child-issued (fence-merged) timestamp. The (reply_to, session_id,
/// request_id) triple is the CLIENT's reply address, generated child-side
/// and echoed verbatim in the ClientProgramReply the parent sends to the
/// child's control endpoint, which forwards the result to the session and
/// settles the program slot.
struct GkProgramStartMessage {
  GatekeeperId gatekeeper = 0;
  EndpointId reply_to = 0;
  std::uint64_t session_id = 0;
  std::uint64_t request_id = 0;
  RefinableTimestamp ts;
  std::string program_name;
  std::vector<NextHop> starts;
};

/// Parent -> gatekeeper process control endpoint: advance the cluster
/// epoch (a peer process died). The child applies it under its clock lock
/// exactly like ClusterManager::AdvanceEpochBarrier does in process.
struct GkEpochAdvanceMessage {
  std::uint32_t epoch = 0;
};

/// Gatekeeper process -> parent coordinator: periodic oldest-active
/// timestamp, feeding the parent's GC watermark (the remote analog of
/// polling Gatekeeper::OldestActive in process).
struct GkWatermarkMessage {
  GatekeeperId gatekeeper = 0;
  RefinableTimestamp oldest_active;
};

/// `shard` value in MetricsReports from a gatekeeper process: report
/// sources are one id space, and gatekeeper g reports as
/// kGkMetricsBase + g (never a valid shard id; consumers indexing by
/// shard skip it like kOracleMetricsSource).
constexpr ShardId kGkMetricsBase = 0xFFFFFF00u;

}  // namespace weaver
