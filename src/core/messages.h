// Wire message schemas exchanged over the MessageBus between gatekeepers,
// shard servers, and node-program coordinators.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "core/graph_op.h"
#include "core/node_program.h"
#include "order/timestamp.h"
#include "vclock/vclock.h"

namespace weaver {

enum MsgTag : std::uint32_t {
  kMsgTx = 1,        // gatekeeper -> shard: committed transaction slice
  kMsgNop = 2,       // gatekeeper -> shard: queue-head keep-alive (§4.2)
  kMsgAnnounce = 3,  // gatekeeper -> gatekeeper: vector clock announce
  kMsgWave = 4,      // coordinator -> shard: node program wave
  kMsgEndProgram = 5,  // coordinator -> shard: program done, GC its state
  kMsgGc = 6,        // deployment -> shard: multi-version GC watermark
  kMsgStop = 7,      // deployment -> shard: shut down event loop
};

/// Committed transaction: ops are the slice destined for the receiving
/// shard (possibly empty -- an empty slice still advances the queue head,
/// doubling as a NOP for uninvolved shards).
struct TxMessage {
  RefinableTimestamp ts;
  std::vector<GraphOp> ops;
};

struct NopMessage {
  RefinableTimestamp ts;
};

struct AnnounceMessage {
  VectorClock clock;
  GatekeeperId from = 0;
};

/// Result of executing one program wave on one shard.
struct WaveResult {
  ShardId shard = 0;
  std::vector<NextHop> next_hops;
  std::vector<std::pair<NodeId, std::string>> returns;
  std::uint64_t vertices_visited = 0;
};

/// One wave of a node program: execute at `starts` when the shard's delay
/// rule (paper §4.1) admits the program's timestamp. The sink callback
/// carries the result back to the coordinator (in-process stand-in for the
/// response message).
struct WaveMessage {
  ProgramId program_id = 0;
  RefinableTimestamp ts;
  std::string program_name;
  std::vector<NextHop> starts;
  std::function<void(WaveResult)> sink;
};

struct EndProgramMessage {
  ProgramId program_id = 0;
};

struct GcMessage {
  RefinableTimestamp watermark;
};

}  // namespace weaver
