// Encode/Decode implementations for every bus message schema in
// core/messages.h, over the wire primitives in net/wire.h
// (docs/transport.md#schemas).
//
// Three levels of API:
//
//   * per-schema Encode(msg, Writer*) / Decode(Reader*, msg*) pairs --
//     the codec proper, unit-tested for byte-identical roundtrips;
//   * EncodePayload / DecodePayload -- the type-erased layer keyed by
//     MsgTag that turns a BusMessage's shared_ptr<void> payload into
//     bytes and back (what the transport glue uses);
//   * EncodeBusMessage -- a full frame (header + payload) for one bus
//     message, installed into MessageBus::SetWireEncoder by deployments
//     that register remote endpoints.
//
// Decoders never trust input: truncated payloads, overflowing varints,
// and absurd vector counts all return InvalidArgument instead of
// crashing or allocating unboundedly. Unknown tags are rejected. A
// decoded payload with trailing bytes is accepted (schema evolution
// appends fields; see net/wire.h versioning rules).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "core/messages.h"
#include "net/bus.h"
#include "net/wire.h"

namespace weaver {

// --- Shared sub-codecs ------------------------------------------------------
//
// Public because they double as the oracle service's changelog record
// format (oracle/oracle_service.cc) -- one canonical byte encoding for
// clocks and timestamps, whether they travel on the wire or into the WAL.

void EncodeVectorClock(const VectorClock& c, wire::Writer* w);
Status DecodeVectorClock(wire::Reader* r, VectorClock* out);

void EncodeTimestamp(const RefinableTimestamp& ts, wire::Writer* w);
Status DecodeTimestamp(wire::Reader* r, RefinableTimestamp* out);

// --- Per-schema codecs ------------------------------------------------------

void Encode(const TxMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, TxMessage* m);

void Encode(const NopMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, NopMessage* m);

void Encode(const AnnounceMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, AnnounceMessage* m);

void Encode(const WaveHopBatchMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, WaveHopBatchMessage* m);

void Encode(const WaveAccountingMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, WaveAccountingMessage* m);

void Encode(const EndProgramMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, EndProgramMessage* m);

void Encode(const GcMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, GcMessage* m);

void Encode(const ClientCommitMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, ClientCommitMessage* m);

void Encode(const ClientProgramMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, ClientProgramMessage* m);

void Encode(const ClientCommitReplyMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, ClientCommitReplyMessage* m);

void Encode(const ClientProgramReplyMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, ClientProgramReplyMessage* m);

void Encode(const MetricsRequestMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, MetricsRequestMessage* m);

void Encode(const MetricsReportMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, MetricsReportMessage* m);

void Encode(const ShardResetMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, ShardResetMessage* m);

void Encode(const ShardResetAckMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, ShardResetAckMessage* m);

void Encode(const PartitionReplayMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, PartitionReplayMessage* m);

void Encode(const OracleRequestMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, OracleRequestMessage* m);

void Encode(const OracleReplyMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, OracleReplyMessage* m);

void Encode(const JoinRequestMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, JoinRequestMessage* m);

void Encode(const JoinAckMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, JoinAckMessage* m);

void Encode(const RoleAssignMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, RoleAssignMessage* m);

void Encode(const StoreCommitMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, StoreCommitMessage* m);

void Encode(const StoreCommitReplyMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, StoreCommitReplyMessage* m);

void Encode(const GkProgramStartMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, GkProgramStartMessage* m);

void Encode(const GkEpochAdvanceMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, GkEpochAdvanceMessage* m);

void Encode(const GkWatermarkMessage& m, wire::Writer* w);
Status Decode(wire::Reader* r, GkWatermarkMessage* m);

// --- Type-erased payload codec (keyed by MsgTag) ----------------------------

/// Serializes a BusMessage payload. kMsgStop (no schema) encodes to an
/// empty payload; unknown tags fail with InvalidArgument.
Result<std::string> EncodePayload(std::uint32_t tag,
                                  const std::shared_ptr<void>& payload);

/// Parses payload bytes into a fresh message of the schema `tag` names.
/// The result is ready to install as BusMessage::payload.
Result<std::shared_ptr<void>> DecodePayload(std::uint32_t tag,
                                            std::string_view bytes);

/// Encodes one bus message as a complete wire frame (header carries the
/// tag, src/dst endpoints, and the channel sequence number). This is the
/// function deployments install via MessageBus::SetWireEncoder.
Result<std::string> EncodeBusMessage(const BusMessage& msg);

/// Rebuilds a BusMessage from a received frame header + decoded payload
/// bytes, preserving the sender-side channel sequence number.
Result<BusMessage> DecodeBusMessage(const wire::FrameHeader& header,
                                    std::string_view payload);

/// Delivery policy for wire-received messages: true for tags that must
/// never block the receiving thread on a bounded inbox (program/control
/// traffic -- the same tags in-process senders pass never_block for).
bool WireNeverBlock(std::uint32_t tag);

}  // namespace weaver
