// Weaver: the public face of the database (paper §1-§4).
//
// A Weaver instance is a full deployment: a bank of gatekeepers with
// vector clocks (the timeline coordinator), a timeline oracle, a set of
// shard servers holding the in-memory multi-version graph, a transactional
// backing store, a cluster manager, and the simulated interconnect.
//
// Clients use three entry points:
//   * BeginTx()/Commit() -- strictly serializable read-write transactions
//     (paper §2.2);
//   * RunProgram() -- node programs: transactional, scatter-gather graph
//     analyses executed on a consistent snapshot (paper §2.3);
//   * BulkLoad() -- offline dataset loading before the deployment starts.
//
// The canonical client surface is the session layer (src/client/):
// WeaverClient::OpenSession() yields sessions that pipeline CommitAsync /
// RunProgramAsync requests to gatekeeper client-ingress endpoints over
// the MessageBus (docs/client_api.md). The blocking methods below remain
// as thin wrappers: on a started deployment Commit() routes the same
// ClientCommit message and waits; on a stopped one (deterministic tests,
// bulk load) it executes inline.
//
// Fault injection (KillShard/RecoverShard/ReplaceGatekeeper) exercises the
// paper's §4.3 recovery paths.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <deque>

#include "client/reply_router.h"
#include "common/annotations.h"
#include "coord/serverd.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/sync.h"
#include "coord/cluster_manager.h"
#include "core/locator.h"
#include "core/messages.h"
#include "core/node_program.h"
#include "core/program_cache.h"
#include "core/transaction.h"
#include "kvstore/kvstore.h"
#include "net/bus.h"
#include "net/wire_link.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oracle/oracle_client.h"
#include "oracle/timeline_oracle.h"
#include "order/gatekeeper.h"
#include "partition/partitioner.h"
#include "shard/shard.h"
#include "storage/storage_options.h"

namespace weaver {

class ShardSupervisor;

/// Shard-process supervision (docs/fault_tolerance.md): the parent watches
/// its shard-server children, detects death (waitpid + link EOF + missed
/// heartbeats), and recovers -- epoch bump, warm-spare respawn, partition
/// replay from the backing store. Only meaningful with remote_shard_fds.
struct ShardSupervisionOptions {
  bool enabled = false;
  /// pid of each original shard-server child, indexed by ShardId (from
  /// serverd::SpawnShardServers). Required when enabled.
  std::vector<pid_t> shard_pids;
  /// Warm spare pool (serverd::SpawnSpareServers): consumed back-to-front,
  /// one per recovery. A shard that dies with the pool empty stays down.
  std::vector<pid_t> spare_pids;
  std::vector<int> spare_fds;
  /// Monitor thread cadence.
  std::uint64_t poll_period_micros = 20'000;
  /// A child silent (no frames received) this long is pinged; silent for
  /// twice this long it is declared wedged, SIGKILLed, and recovered.
  std::uint64_t heartbeat_timeout_micros = 2'000'000;
  /// How long recovery waits for the surviving shards to acknowledge the
  /// wire-sequence reset before proceeding anyway (counted in
  /// supervisor.reset_ack_timeouts).
  std::uint64_t reset_ack_timeout_micros = 2'000'000;
  /// pid of each out-of-parent gatekeeper process, indexed by
  /// GatekeeperId (remote_gatekeeper_fds deployments). When set, the
  /// monitor watches and recovers them like shard children.
  std::vector<pid_t> gatekeeper_pids;
  /// Exec-based respawn (docs/transport.md#cluster-bootstrap): spawn a
  /// fresh weaver-serverd for `role`/`id` (shard id, or gatekeeper id
  /// for kGatekeeper) at cluster epoch `epoch` and return its connected
  /// process. `rehydrate` asks a shard to resync its oracle replica.
  /// Preferred over the warm-spare pool when set -- and the ONLY respawn
  /// path for gatekeeper processes, which spares cannot become.
  std::function<Result<serverd::ShardProcess>(
      NodeRole role, std::uint32_t id, bool rehydrate, std::uint32_t epoch)>
      exec_respawn;
};

/// Standalone timeline-oracle service (docs/oracle_service.md): the
/// authoritative oracle runs as a supervised weaver-oracled process with
/// a durable changelog; this process (and every shard server) holds only
/// an OracleClient replica. Remote-shard deployments only.
struct OracleServiceOptions {
  bool enabled = false;
  /// The weaver-oracled child (serverd::SpawnOracleServer): its pid (for
  /// supervision) and the parent's end of its socketpair.
  pid_t pid = -1;
  int fd = -1;
  /// Parent-side OracleClient deadlines (GC collect RPCs).
  std::uint64_t rpc_timeout_micros = 250'000;
  std::uint64_t total_deadline_micros = 3'000'000;
};

struct WeaverOptions {
  std::size_t num_gatekeepers = 2;
  std::size_t num_shards = 2;
  /// Vector clock synchronization period tau, microseconds (paper §3.5).
  std::uint64_t tau_micros = 500;
  /// NOP transaction period, microseconds (paper §4.2).
  std::uint64_t nop_period_micros = 200;
  std::size_t kv_stripes = 64;
  /// Start event loops and timers at Open(). When false the caller bulk
  /// loads first and then calls Start() (or drives shards manually in
  /// deterministic tests).
  bool start = true;
  /// Use the LDG streaming partitioner instead of hash placement.
  bool use_ldg_partitioner = false;
  std::size_t expected_vertices = 1 << 20;
  /// Superseded runaway guard: the pre-PR-4 barrier loop aborted after
  /// this many coordinator waves. Decentralized execution has no
  /// per-round analog (drain-cycle counts scale with batching, not
  /// traversal depth), so this knob is retained for source
  /// compatibility but NO LONGER ENFORCED -- max_program_hops is the
  /// guard (each cycle consumes >= 1 hop, so it bounds cycles too).
  std::size_t max_program_waves = 4096;
  /// Abort runaway node programs after this many total hops consumed
  /// (the runaway guard; 0 disables).
  std::size_t max_program_hops = 1 << 26;
  /// Max program hops one shard executes per drain cycle before control
  /// returns to its event loop (abort responsiveness; leftover hops
  /// carry over).
  std::size_t shard_max_hops_per_cycle = 2048;
  /// Max node programs a gatekeeper's client ingress keeps in flight at
  /// once. Program execution is asynchronous (workers seed the start
  /// wave and move on), so without this bound one session could flood
  /// the shards with concurrent traversals. 0 disables.
  std::size_t client_max_inflight_programs = 64;
  /// Multi-version / oracle GC period (paper §4.5). The deployment runs
  /// RunGarbageCollection() on this cadence; 0 disables the timer (tests
  /// and benches may trigger GC manually). Without periodic GC the
  /// timeline oracle's dependency graph grows without bound and ordering
  /// requests slow down quadratically.
  std::uint64_t gc_period_micros = 50'000;
  /// Write bulk-loaded data through to the backing store (durable; needed
  /// by recovery). Disable only for throughput benches that never recover.
  bool bulk_load_durable = true;
  /// Memoize node-program results and invalidate them on writes to their
  /// dependency vertices (paper §4.6). The paper's evaluation disables
  /// caching, and so does this default.
  bool enable_program_cache = false;
  /// Simulated backing-store commit round trip added to every read-write
  /// transaction (paper deployments talk to HyperDex Warp over the
  /// network; the in-process KvStore alone would make writes unrealistically
  /// cheap relative to reads). 0 (default) disables; the Fig 9/10 benches
  /// set it -- see EXPERIMENTS.md for calibration.
  std::uint64_t kv_commit_delay_micros = 0;
  /// Client-ingress worker pool per gatekeeper. Commits keep per-session
  /// FIFO lanes; programs run on any free worker. Workers mostly wait on
  /// round trips and program waves, so size for overlap, not cores.
  std::size_t client_ingress_workers = 8;
  /// Requests drained per session-lane visit; a drained batch of
  /// pipelined commits shares one simulated backing-store round trip.
  std::size_t client_ingress_batch = 8;
  /// Per-session ingress lane bound; submissions past it fail fast with
  /// ResourceExhausted (0 disables).
  std::size_t client_lane_capacity = 256;
  /// Shard inbox bound: senders block once this many messages are queued,
  /// so producers pace to the slowest consumer instead of growing memory
  /// (0 restores the historical unbounded inboxes).
  std::size_t shard_inbox_capacity = 8192;
  /// Gatekeepers withhold NOPs from a shard whose inbox is deeper than
  /// this (adaptive NOP emission; 0 disables). Healthy shards keep
  /// receiving theirs -- a frozen queue head stalls node programs.
  std::size_t nop_high_water = 4096;
  /// Shards pause batch-draining their inbox while this many transactions
  /// are already queued, so overload surfaces as inbox depth for the NOP
  /// high-water check (0 disables).
  std::size_t shard_queue_high_water = 4096;
  /// Durable storage for the backing store (WAL + checkpoints under
  /// storage.data_dir; see docs/storage.md). With a data_dir set, Open()
  /// recovers every committed vertex/edge from disk -- shards rebuild
  /// their partitions, the id allocators resume past recovered ids, and
  /// gatekeeper clocks boot one epoch after the persisted one so new
  /// timestamps order after all recovered writes. Default: disabled
  /// (pure in-memory deployment, exactly the pre-storage behavior).
  StorageOptions storage;
  /// Deferred-delivery capacity of each gatekeeper's announce endpoint
  /// (bounded inline handlers; docs/transport.md#backpressure). A
  /// gatekeeper lagging behind a delay-injected announce stream sheds the
  /// excess instead of queueing it unboundedly -- dropped announces are
  /// superseded by the next round. 0 disables.
  std::size_t announce_capacity = 8192;
  /// Multi-process deployment (docs/transport.md): one connected stream
  /// socket per shard, each leading to a shard-server process started
  /// with RunShardServer (coord/serverd.h). When non-empty (size must
  /// equal num_shards), Open() registers remote proxy endpoints over
  /// SocketTransport instead of constructing in-process shards; all
  /// shard traffic is encoded into wire frames, and shard-to-shard hop
  /// forwarding transits this process as a hub. Remote deployments
  /// require hash placement (shard servers route forwarded hops with the
  /// same hash; use_ldg_partitioner is ignored) and do not support bulk
  /// load or shard fault injection -- build graphs through transactions.
  std::vector<int> remote_shard_fds;
  /// Out-of-parent gatekeepers (docs/transport.md#cluster-bootstrap):
  /// one connected stream socket per gatekeeper, each leading to a
  /// RunGatekeeperServer process that owns that gatekeeper's clock,
  /// sequencer, timers, and client ingress. When non-empty (size must
  /// equal num_gatekeepers; requires remote_shard_fds), this process
  /// keeps only the backing store and a per-gatekeeper agent endpoint
  /// that applies StoreCommit RPCs and seeds node programs. Client
  /// sessions talk to the gatekeeper processes directly (their ingress
  /// endpoints become remote proxies here).
  std::vector<int> remote_gatekeeper_fds;
  /// Request-trace sampling stride (docs/observability.md#tracing): keep
  /// every n-th commit / program span in Weaver::trace(). 0 disables
  /// (default; ShouldSample is then one relaxed load on the hot path).
  std::uint64_t trace_sample_every = 0;
  /// Remote deployments only: period of the background MetricsRequest
  /// poll that refreshes each remote shard's inbox depth (the NOP
  /// backpressure input; MessageBus::QueueDepth staleness contract) and
  /// rides on the GC thread, so it also requires gc_period_micros > 0.
  /// 0 disables the poll; CollectMetrics() still works on demand.
  std::uint64_t metrics_poll_period_micros = 100'000;
  /// Shard-process crash supervision (docs/fault_tolerance.md).
  ShardSupervisionOptions supervision;
  /// Standalone replicated-changelog timeline oracle
  /// (docs/oracle_service.md). Requires remote_shard_fds; supervised
  /// alongside the shards when supervision is enabled.
  OracleServiceOptions oracle_service;
  /// Fault-injection seam (net/fault_injector.h): wraps each remote
  /// shard's outbound transport at adoption time -- both the original
  /// remote_shard_fds and any respawned spare. Identity when unset.
  std::function<std::shared_ptr<Transport>(std::shared_ptr<Transport>,
                                           ShardId)>
      shard_transport_decorator;
};

class Weaver {
 public:
  /// Builds a deployment. Invalid options are clamped to the nearest valid
  /// value. Returns nullptr only when options.storage names a data dir
  /// that cannot be opened or recovered (never for in-memory deployments).
  static std::unique_ptr<Weaver> Open(const WeaverOptions& options);
  ~Weaver();
  Weaver(const Weaver&) = delete;
  Weaver& operator=(const Weaver&) = delete;

  /// Starts shard event loops and gatekeeper timers (idempotent).
  void Start();
  /// Stops all threads (idempotent; also run by the destructor).
  void Shutdown();
  bool started() const { return started_.load(); }

  // --- Transactions -------------------------------------------------------

  Transaction BeginTx();
  /// Commits the transaction through a gatekeeper. kAborted means a
  /// concurrency conflict: retry the whole transaction.
  Status Commit(Transaction* tx);
  /// Convenience retry loop: runs `body` against fresh transactions until
  /// commit succeeds, the body fails with a non-retryable status, or
  /// `max_attempts` is exhausted.
  Status RunTransaction(const std::function<Status(Transaction&)>& body,
                        int max_attempts = 16);

  // --- Node programs --------------------------------------------------------

  /// Runs the registered node program `name` starting from `starts`.
  Result<ProgramResult> RunProgram(std::string_view name,
                                   std::vector<NextHop> starts);
  /// Single-start convenience overload (the cacheable shape, §4.6).
  Result<ProgramResult> RunProgram(std::string_view name, NodeId start,
                                   std::string params = "");

  /// Runs a node program on a specific gatekeeper (the session layer pins
  /// each session to one gatekeeper; the overloads above round-robin).
  Result<ProgramResult> RunProgramOn(GatekeeperId gk, std::string_view name,
                                     std::vector<NextHop> starts);
  /// Single-start variant; consults the program cache when enabled.
  Result<ProgramResult> RunProgramOn(GatekeeperId gk, std::string_view name,
                                     NodeId start, std::string params = "");

  /// Asynchronous node-program execution (docs/node_programs.md): seeds
  /// the start wave onto the owning shards and returns immediately;
  /// `done` fires exactly once -- possibly inline (validation failure,
  /// program-cache hit, empty start set) or later on a shard thread when
  /// the quiescence accounting balances. Single-start invocations
  /// consult the program cache. The gatekeeper client ingress runs every
  /// ClientProgram request through this, so its workers never block on
  /// waves. A valid `fence` timestamp makes the program's snapshot
  /// observe that commit (read-your-writes; Gatekeeper::BeginProgram).
  void RunProgramAsyncOn(GatekeeperId gk, std::string_view name,
                         std::vector<NextHop> starts,
                         std::function<void(Result<ProgramResult>)> done);
  void RunProgramAsyncOn(GatekeeperId gk, std::string_view name,
                         std::vector<NextHop> starts,
                         const RefinableTimestamp& fence,
                         std::function<void(Result<ProgramResult>)> done);

  /// Historical query (paper §4.5): runs `name` on the consistent snapshot
  /// at `ts`, a timestamp obtained from an earlier transaction or program.
  /// The caller must ensure the versions at `ts` have not been garbage
  /// collected (run with gc_period_micros = 0, or query above the
  /// watermark); reads below the watermark return whatever GC left.
  Result<ProgramResult> RunProgramAt(std::string_view name,
                                     std::vector<NextHop> starts,
                                     const RefinableTimestamp& ts);

  // --- Bulk load (before Start()) ------------------------------------------

  /// Creates a vertex directly in the shards/backing store.
  Status BulkCreateNode(NodeId id,
                        std::vector<std::pair<std::string, std::string>>
                            properties = {});
  /// Creates an edge directly; both endpoints must be bulk-created first.
  Result<EdgeId> BulkCreateEdge(NodeId from, NodeId to,
                                std::vector<std::pair<std::string,
                                                      std::string>>
                                    properties = {});
  /// Flushes bulk-loaded vertices to the backing store (no-op when
  /// bulk_load_durable is false).
  Status FinishBulkLoad();

  // --- Maintenance ----------------------------------------------------------

  /// One multi-version GC round (paper §4.5): computes the watermark from
  /// the oldest in-flight program and propagates it to shards + oracle.
  /// `include_shards` additionally collapses shard-side version chains and
  /// trims decision caches -- an O(graph) sweep, so the periodic timer
  /// does it on a much slower cadence than the cheap oracle collection.
  void RunGarbageCollection(bool include_shards = true);

  // --- Fault injection (paper §4.3) ------------------------------------------

  /// Crashes a shard server: drops its in-memory state and in-flight
  /// messages.
  Status KillShard(ShardId id);
  /// Boots a replacement shard that restores its partition from the
  /// backing store, then rejoins the deployment.
  Status RecoverShard(ShardId id);
  /// Replaces a gatekeeper: restarts its vector clock in a new epoch
  /// behind a cluster-wide barrier.
  Status ReplaceGatekeeper(GatekeeperId id);

  // --- Identifiers -----------------------------------------------------------

  NodeId AllocateNodeId() {
    return next_node_id_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Keeps the allocator ahead of an explicitly chosen id.
  void ReserveNodeId(NodeId id) {
    std::uint64_t expected = next_node_id_.load(std::memory_order_relaxed);
    while (expected <= id &&
           !next_node_id_.compare_exchange_weak(expected, id + 1,
                                                std::memory_order_relaxed)) {
    }
  }
  EdgeId AllocateEdgeId() {
    return next_edge_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Introspection ----------------------------------------------------------

  const WeaverOptions& options() const { return options_; }
  KvStore& kv() { return *kv_; }
  /// Vertices restored from durable storage at Open() (0 for fresh or
  /// in-memory deployments).
  std::uint64_t recovered_vertices() const { return recovered_vertices_; }
  TimelineOracle& oracle() { return oracle_; }
  /// The parent's oracle handle: a local-mode client over oracle_, or
  /// the weaver-oracled RPC path (WeaverOptions::oracle_service).
  OracleClient& oracle_client() { return *oracle_client_; }
  MessageBus& bus() { return *bus_; }
  NodeLocator& locator() { return *locator_; }
  ClusterManager& cluster() { return cluster_; }
  /// In-process gatekeeper access. Out-of-parent gatekeeper deployments
  /// (remote_gatekeeper_fds) have no local Gatekeeper objects; use
  /// GatekeeperClientEndpoint for request routing there.
  Gatekeeper& gatekeeper(GatekeeperId id) { return *gatekeepers_[id]; }
  /// Where sessions address ClientCommit/ClientProgram messages for
  /// gatekeeper `id`: the local ingress endpoint, or the gatekeeper
  /// process's remote proxy.
  EndpointId GatekeeperClientEndpoint(GatekeeperId id) const {
    return remote_gatekeepers_ ? gk_client_endpoints_[id]
                               : gatekeepers_[id]->client_endpoint();
  }
  bool remote_gatekeepers() const { return remote_gatekeepers_; }
  Shard& shard(ShardId id) { return *shards_[id]; }
  std::size_t num_gatekeepers() const { return options_.num_gatekeepers; }
  std::size_t num_shards() const { return shards_.size(); }
  ProgramRegistry& programs() { return *programs_; }
  ProgramCache& program_cache() { return program_cache_; }

  // --- Observability (docs/observability.md) ---------------------------------

  /// Cluster-wide metrics: this process's registry snapshot plus, for
  /// remote deployments, a fresh MetricsReport from every shard-server
  /// process.
  struct ClusterMetrics {
    obs::MetricsSnapshot local;
    /// One report per remote shard process, sorted by shard id. Empty for
    /// in-process deployments (every component already lives in `local`).
    std::vector<MetricsReportMessage> remote;
    /// local + every remote snapshot, folded associatively.
    obs::MetricsSnapshot Merged() const;
  };

  /// Snapshots the cluster's metrics. Remote deployments request a
  /// MetricsReport from every shard-server process and wait up to
  /// `timeout_micros` for all replies (TimedOut if any is missing); the
  /// reported inbox depths also refresh MessageBus::QueueDepth for the
  /// remote shard endpoints.
  Result<ClusterMetrics> CollectMetrics(
      std::uint64_t timeout_micros = 1'000'000);

  /// This process's instrument registry (every in-process component
  /// exports into it).
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Sampled commit/program span log (WeaverOptions::trace_sample_every).
  obs::TraceLog& trace() { return trace_; }

  /// Deterministic helpers for tests with start = false.
  void PumpAll();  // one announce + NOP round, then drain every shard

  // --- Session-layer support (src/client/) -----------------------------------

  /// Sleeps for the simulated backing-store round trip when configured
  /// (blocking commit wrappers pay it on the caller's thread; pipelined
  /// batches pay one per ingress batch instead). No-op for empty batches.
  void PayCommitDelay(std::size_t num_ops);
  /// Writes an executed commit's outcome back onto the shell a moved-from
  /// transaction left behind, so tx->timestamp()/committed() keep working
  /// for blocking callers.
  static void AnnotateCommitOutcome(Transaction* tx, const CommitResult& r);

  /// Sessions register their reply router keyed by the gatekeeper they
  /// are pinned to. When that gatekeeper is an out-of-parent process and
  /// it crashes, its in-flight client requests die with it -- no reply
  /// will ever arrive -- so the supervisor fails the registered routers'
  /// outstanding calls with Unavailable and clients resubmit (commits are
  /// acked only after the parent-side store apply, so resubmitting an
  /// already-applied write re-validates and is benign). Returns a
  /// registration id for UnregisterSessionRouter.
  std::uint64_t RegisterSessionRouter(GatekeeperId gk,
                                      std::weak_ptr<ReplyRouter> router);
  void UnregisterSessionRouter(std::uint64_t registration);
  /// Fails every outstanding call on sessions pinned to `gk`
  /// (supervisor's gatekeeper-crash fence).
  void FailSessionCalls(GatekeeperId gk, const Status& status);

 private:
  friend class Transaction;
  friend class ShardSupervisor;
  explicit Weaver(const WeaverOptions& options);

  /// Rebuilds a live transaction from a decoded ClientCommit message:
  /// resumes the OCC read set against this deployment's backing store and
  /// adopts the buffered ops + placements. The ingress executor runs it
  /// through CommitOnGatekeeper like any local transaction.
  Transaction RehydrateCommit(ClientCommitMessage& msg);

  /// True when shard `s` can receive messages. In-process deployments
  /// check the server object (fault injection nulls it); remote shards
  /// consult the supervisor's down bitmap (always alive when supervision
  /// is off -- a dead one fails the Send instead).
  bool ShardAlive(std::size_t s) const {
    if (remote_shards_) {
      return remote_down_ == nullptr ||
             !remote_down_[s].load(std::memory_order_relaxed);
    }
    return s < shards_.size() && shards_[s] != nullptr;
  }
  EndpointId ShardEndpoint(std::size_t s) const {
    return shard_endpoints_[s];
  }

  ShardId PlaceNewNode(NodeId id);
  /// Round-robin gatekeeper choice shared by Commit and RunProgram.
  GatekeeperId NextGatekeeperId() {
    return static_cast<GatekeeperId>(
        next_gk_.fetch_add(1, std::memory_order_relaxed) %
        gatekeepers_.size());
  }
  /// Resolves placements and runs the commit protocol on `gk` (both the
  /// blocking wrapper and the client ingress land here).
  Status CommitOnGatekeeper(Transaction* tx, Gatekeeper& gk);

  // --- Out-of-parent gatekeeper agent (remote_gatekeeper_fds) ---------------

  /// Applies one StoreCommit attempt from gatekeeper process
  /// `m->gatekeeper` at the timestamp it issued and answers with the
  /// ApplyOutcome image. Agent worker thread.
  void HandleStoreCommit(std::shared_ptr<StoreCommitMessage> m);
  /// Seeds a node program a gatekeeper process timestamped; the
  /// completion routes the reply back through its control endpoint.
  void HandleGkProgramStart(std::shared_ptr<GkProgramStartMessage> m);
  void EnqueueAgentWork(std::function<void()> work);
  void AgentWorkerLoop();
  void StopAgentPool();
  /// Boot-time recovery (paper §4.3 generalized to full-deployment
  /// restart): installs every vertex blob the KvStore recovered into its
  /// owning shard, repopulates the locator, and advances the id
  /// allocators past every recovered id.
  void RestoreFromBackingStore();
  /// One in-flight node program as the coordinator sees it: seed count
  /// plus the accounting deltas shards report. The program is quiescent
  /// -- no hop executing or in flight anywhere -- exactly when
  /// consumed == spawned + starts (credit counting: every hop is counted
  /// spawned once, by the coordinator for seeds or by the shard that
  /// created it, and consumed once, by the shard that executed or
  /// coalesced it; shards report spawns causally before the spawned hops
  /// can be consumed downstream).
  struct ProgramExecution {
    /// Fresh per execution (NOT the timestamp's event id: historical
    /// queries re-run old timestamps, and two executions of one
    /// timestamp must not share shard-side state or tombstones).
    ProgramId pid = 0;
    RefinableTimestamp ts;
    std::uint64_t starts = 0;
    std::uint64_t consumed = 0;
    std::uint64_t spawned = 0;
    std::uint64_t visited = 0;
    std::uint64_t cycles = 0;
    std::uint64_t forwarded_batches = 0;
    std::uint64_t accounting_msgs = 0;
    std::vector<std::pair<NodeId, std::string>> returns;
    std::vector<bool> touched;  // shards that reported accounting
    Status failure;             // non-OK: abort (peer down, runaway)
    std::function<void(Result<ProgramResult>)> done;
    std::uint64_t begin_ns = 0;  // seed time (coord.program_latency)
    bool traced = false;         // record a TraceSpan on completion
  };

  /// Seed + quiescence side of the decentralized execution (shared by
  /// every Run* entry point). `gk` (may be null for historical queries)
  /// receives the coordinator work attribution. `done` fires exactly
  /// once.
  void ExecuteProgramAsync(std::string_view name,
                           std::vector<NextHop> starts,
                           const RefinableTimestamp& ts, Gatekeeper* gk,
                           std::function<void(Result<ProgramResult>)> done);
  /// Blocking wrapper over ExecuteProgramAsync.
  Result<ProgramResult> ExecuteProgram(std::string_view name,
                                       std::vector<NextHop> starts,
                                       const RefinableTimestamp& ts,
                                       Gatekeeper* gk);
  /// Coordinator endpoint delivery: merges one accounting delta and
  /// completes the execution on quiescence or failure.
  void OnWaveAccounting(const std::shared_ptr<WaveAccountingMessage>& m);
  /// Coordinator endpoint delivery of one shard-server process's registry
  /// snapshot (reply to a MetricsRequest). Refreshes the remote inbox
  /// depth and completes a pending CollectMetrics when all replies are in.
  void OnMetricsReport(const std::shared_ptr<MetricsReportMessage>& m);
  /// Sends a MetricsRequest (id `rid`) to every remote shard; returns how
  /// many sends succeeded. never_block: this may run on the GC thread.
  std::size_t RequestRemoteMetrics(std::uint64_t rid);
  /// GC-thread hook: fires an unsolicited metrics poll when the configured
  /// period elapsed (replies refresh remote depths; nobody waits on them).
  void MaybePollRemoteMetrics();
  /// Tears down a finished execution: EndProgram broadcast (touched
  /// shards on success, every live shard on abort) and the done
  /// callback. Runs outside executions_mu_.
  void CompleteExecution(std::unique_ptr<ProgramExecution> ex);
  /// Fails every still-registered execution (shutdown).
  void FailAllExecutions(const Status& status);

  WeaverOptions options_;
  /// Observability state. Declared before every component so it is
  /// destroyed after them all: components deregister their instruments in
  /// their destructors (DropPrefix), which must find the registry alive.
  obs::MetricsRegistry metrics_;
  obs::TraceLog trace_;
  std::unique_ptr<MessageBus> bus_;
  std::unique_ptr<KvStore> kv_;
  TimelineOracle oracle_;
  /// This process's oracle handle (constructed in the ctor after the
  /// endpoint layout is registered; GC watermarks flow through it). With
  /// oracle_service it holds the replica; oracle_ is then unused.
  std::unique_ptr<OracleClient> oracle_client_;
  std::shared_ptr<ProgramRegistry> programs_;
  std::unique_ptr<NodeLocator> locator_;
  /// Placement decisions run under partition_mu_ (the LDG partitioner
  /// mutates per-shard load state); set once at Open, before any thread.
  std::unique_ptr<Partitioner> partitioner_;
  /// In-process shard servers; all null in remote-shard deployments.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<EndpointId> shard_endpoints_;  // stable across recovery
  bool remote_shards_ = false;
  /// Outbound transports + inbound wire links, one per remote shard
  /// (the links also hub-forward shard-to-shard frames).
  std::vector<std::shared_ptr<Transport>> remote_shard_transports_;
  std::vector<std::unique_ptr<WireLink>> links_;
  /// weaver-oracled wiring (WeaverOptions::oracle_service): the outbound
  /// transport, its inbound link, and the layout's oracle endpoints.
  bool remote_oracle_ = false;
  std::shared_ptr<Transport> oracle_transport_;
  std::unique_ptr<WireLink> oracle_link_;
  EndpointId oracle_endpoint_ = 0;
  std::vector<EndpointId> oracle_client_endpoints_;  // per shard
  EndpointId parent_oracle_client_endpoint_ = 0;
  std::vector<std::unique_ptr<Gatekeeper>> gatekeepers_;
  /// Out-of-parent gatekeeper wiring (WeaverOptions::remote_gatekeeper_fds):
  /// gatekeepers_ stays empty; each gatekeeper process gets an outbound
  /// transport, remote proxies at its server/ingress/control layout ids,
  /// a parent-side agent endpoint, and an inbound link.
  bool remote_gatekeepers_ = false;
  std::vector<std::shared_ptr<Transport>> remote_gatekeeper_transports_;
  std::vector<std::unique_ptr<WireLink>> gatekeeper_links_;
  std::vector<EndpointId> gk_server_endpoints_;
  std::vector<EndpointId> gk_client_endpoints_;
  std::vector<EndpointId> gk_agent_endpoints_;
  std::vector<EndpointId> gk_control_endpoints_;
  /// Agent work (StoreCommit applies, program seeds) runs on this pool,
  /// never on a link's receive thread -- applies sleep (commit delay) and
  /// take the commit gate.
  Mutex agent_mu_;
  std::condition_variable agent_cv_;
  std::deque<std::function<void()>> agent_queue_ GUARDED_BY(agent_mu_);
  bool agent_stop_ GUARDED_BY(agent_mu_) = false;
  std::vector<std::thread> agent_workers_;
  /// Last GkWatermark from each gatekeeper process (GC input); invalid
  /// until the first report arrives.
  Mutex gk_wm_mu_;
  std::vector<RefinableTimestamp> gk_watermarks_ GUARDED_BY(gk_wm_mu_);
  ClusterManager cluster_;
  EndpointId coordinator_endpoint_ = 0;
  /// Reply endpoint + router for the deployment-internal blocking
  /// wrappers (Weaver::Commit on a started deployment).
  std::shared_ptr<ReplyRouter> internal_replies_;
  EndpointId internal_reply_endpoint_ = 0;

  /// Session reply routers by registration id (RegisterSessionRouter):
  /// the gatekeeper each session is pinned to, plus a weak ref so a
  /// racing ~Session never has its router resurrected here.
  Mutex session_routers_mu_;
  std::uint64_t next_session_router_ GUARDED_BY(session_routers_mu_) = 1;
  std::map<std::uint64_t, std::pair<GatekeeperId, std::weak_ptr<ReplyRouter>>>
      session_routers_ GUARDED_BY(session_routers_mu_);

  // In-flight node programs keyed by execution id (freshly allocated
  // per run from next_program_id_ -- see ProgramExecution::pid).
  Mutex executions_mu_;
  std::unordered_map<ProgramId, std::unique_ptr<ProgramExecution>>
      executions_ GUARDED_BY(executions_mu_);

  ProgramCache program_cache_;
  Status storage_status_;  // non-OK when the durable store failed to open
  std::uint64_t recovered_vertices_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> next_node_id_{1};
  std::atomic<std::uint64_t> next_edge_id_{1};
  std::atomic<std::uint64_t> next_gk_{0};
  std::atomic<std::uint64_t> next_program_id_{1};
  /// Lane ids for blocking-wrapper commits routed through the client
  /// ingress: the high bit keeps them disjoint from session ids (which
  /// are bus endpoint ids, and so fit in 32 bits).
  std::atomic<std::uint64_t> next_internal_lane_{1ull << 63};

  Mutex partition_mu_;  // serializes placement decisions

  // Cluster-wide metrics collection (remote deployments): CollectMetrics
  // registers a pending entry keyed by request id; coordinator-delivered
  // MetricsReports fill it and signal the waiter. Unsolicited reports
  // (background poll, late replies) just refresh remote depths.
  Mutex metrics_mu_;
  std::condition_variable metrics_cv_;
  std::atomic<std::uint64_t> next_metrics_request_{1};
  struct MetricsCollection {
    std::vector<MetricsReportMessage> reports;
    std::size_t expected = 0;
    bool failed = false;  // shutdown before completion
  };
  std::unordered_map<std::uint64_t, MetricsCollection> metrics_pending_
      GUARDED_BY(metrics_mu_);
  std::uint64_t last_metrics_poll_ns_ = 0;  // GC-thread private

  // Coordinator-side program instruments (owned by metrics_).
  obs::Counter* coord_programs_completed_ = nullptr;
  obs::Counter* coord_programs_aborted_ = nullptr;
  obs::Counter* coord_program_hops_ = nullptr;
  obs::Counter* coord_accounting_msgs_ = nullptr;
  obs::LatencyHistogram* coord_program_latency_ = nullptr;

  // Periodic GC timer (paper §4.5).
  std::thread gc_thread_;
  Mutex gc_mu_;
  std::condition_variable gc_cv_;
  bool stop_gc_ GUARDED_BY(gc_mu_) = false;

  // Bulk-load bookkeeping: shard -> vertices needing a durable flush.
  Mutex bulk_mu_;
  RefinableTimestamp bulk_ts_ GUARDED_BY(bulk_mu_);
  std::vector<std::vector<NodeId>> bulk_dirty_ GUARDED_BY(bulk_mu_);

  // Endpoints of killed shards, kept for recovery reattachment.
  std::unordered_map<ShardId, EndpointId> dead_shard_endpoints_;

  // --- Shard-process supervision (docs/fault_tolerance.md) -----------------

  /// Commit/recovery gate. Commits and program seeding hold it SHARED;
  /// the supervisor holds it EXCLUSIVE across the wire-sequence reset +
  /// backing-store scan + partition replay, so no slice or hop batch can
  /// interleave with the replay stream. Lock order: the epoch barrier
  /// (which takes every clock lock) runs BEFORE the exclusive acquisition
  /// and never under it.
  SharedMutex commit_gate_;
  /// Per-shard down flags (remote deployments with supervision only):
  /// set the moment a crash is detected so ShardAlive fast-fails new work
  /// with Unavailable instead of letting it hang on a dead socket.
  std::unique_ptr<std::atomic<bool>[]> remote_down_;
  /// Declared last: destroyed (and explicitly stopped in Shutdown) before
  /// every component it watches.
  std::unique_ptr<ShardSupervisor> supervisor_;
};

}  // namespace weaver
