// Transaction: the client-side weaver_tx block (paper §2.2, Fig 2).
//
// Writes (create/delete vertex/edge, assign/remove properties) are
// buffered and submitted as a batch to a gatekeeper at commit (paper
// §4.2). Reads go to the backing store through the transaction's OCC
// context, so any concurrent modification of data this transaction read
// aborts it at commit. Buffered writes are not visible to the
// transaction's own reads -- this matches the paper's client model, where
// writes are collated and validated at commit time.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "core/graph_op.h"
#include "kvstore/kvstore.h"
#include "order/timestamp.h"

namespace weaver {

class Weaver;

/// Point-in-time view of one edge read inside a transaction.
struct EdgeSnapshot {
  EdgeId id = kInvalidEdgeId;
  NodeId to = kInvalidNodeId;
  std::vector<std::pair<std::string, std::string>> properties;
};

/// Point-in-time view of one vertex read inside a transaction: the latest
/// committed state (live property versions and live edges only).
struct NodeSnapshot {
  NodeId id = kInvalidNodeId;
  bool exists = false;
  std::vector<std::pair<std::string, std::string>> properties;
  std::vector<EdgeSnapshot> edges;

  std::optional<std::string> GetProperty(std::string_view key) const {
    for (const auto& [k, v] : properties) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
};

/// Outcome of an (async) commit. Carries the commit timestamp because the
/// submitting client moved its Transaction into the request and can no
/// longer ask it.
struct CommitResult {
  Status status;
  RefinableTimestamp timestamp;
  bool ok() const { return status.ok(); }
};

/// The plain-data content of a transaction, detached for submission as a
/// ClientCommit message (core/messages.h): the buffered write batch, the
/// tentative shard placements of created vertices, and the OCC read set.
/// Everything here is serializable; the executing gatekeeper rehydrates a
/// live transaction from it against its own backing store.
struct CommitPayload {
  std::vector<GraphOp> ops;
  std::vector<std::pair<NodeId, ShardId>> created_placements;
  std::vector<std::pair<std::string, std::uint64_t>> read_set;
};

class Transaction {
 public:
  /// Constructs an invalid transaction (equivalent to the moved-from
  /// state). Lets Pending<T> payloads, request messages, and session
  /// containers hold transactions by value; assign a real one from
  /// BeginTx() before use.
  Transaction() = default;
  Transaction(Transaction&& other) noexcept;
  Transaction& operator=(Transaction&& other) noexcept;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// False for default-constructed or moved-from transactions. Write and
  /// read methods on an invalid transaction fail with FailedPrecondition
  /// (id-returning creators return invalid ids) instead of crashing.
  bool valid() const { return db_ != nullptr; }

  // --- Writes (buffered; applied atomically at commit) -------------------

  /// Creates a vertex with a freshly allocated handle.
  NodeId CreateNode();
  /// Creates a vertex with a caller-chosen handle (must be unused).
  Status CreateNodeWithId(NodeId id);
  Status DeleteNode(NodeId id);
  /// Creates a directed edge and returns its handle.
  EdgeId CreateEdge(NodeId from, NodeId to);
  Status DeleteEdge(NodeId from, EdgeId edge);
  Status AssignNodeProperty(NodeId id, std::string key, std::string value);
  Status RemoveNodeProperty(NodeId id, std::string key);
  Status AssignEdgeProperty(NodeId from, EdgeId edge, std::string key,
                            std::string value);
  Status RemoveEdgeProperty(NodeId from, EdgeId edge, std::string key);

  // --- Reads (transactional: recorded in the OCC read set) ---------------

  /// Reads a vertex's latest committed state. NotFound if it never
  /// existed; a snapshot with exists == false if it was deleted.
  Result<NodeSnapshot> GetNode(NodeId id);
  /// True iff the vertex exists (committed, not deleted).
  Result<bool> NodeExists(NodeId id);

  // --- Submission (session client API) ------------------------------------

  /// Detaches the buffered state as the plain fields of a ClientCommit
  /// message and invalidates the transaction (valid() becomes false; the
  /// local OCC context is rolled back -- the executing gatekeeper resumes
  /// it from the exported read set). The hollow shell remains safe to
  /// hold: blocking wrappers annotate it with the commit outcome so
  /// timestamp()/committed() keep working.
  CommitPayload DetachForSubmit();

  // --- Introspection ------------------------------------------------------

  const std::vector<GraphOp>& ops() const { return ops_; }
  std::size_t NumOps() const { return ops_.size(); }
  bool committed() const { return committed_; }
  /// The refinable timestamp assigned at commit (valid only afterwards).
  const RefinableTimestamp& timestamp() const { return ts_; }

 private:
  friend class Weaver;
  Transaction(Weaver* db, KvTransaction kvtx);

  Weaver* db_ = nullptr;
  KvTransaction kvtx_;
  std::vector<GraphOp> ops_;
  /// Shards tentatively chosen for vertices created by this transaction.
  std::unordered_map<NodeId, ShardId> created_placements_;
  RefinableTimestamp ts_;
  bool committed_ = false;
};

/// Shared retry loop behind Weaver::RunTransaction and
/// Session::RunTransaction: runs `body` against fresh transactions from
/// `begin` until `commit` succeeds, the body fails with a non-retryable
/// status, or `max_attempts` is exhausted. Only kAborted retries.
Status RetryTransaction(const std::function<Transaction()>& begin,
                        const std::function<Status(Transaction*)>& commit,
                        const std::function<Status(Transaction&)>& body,
                        int max_attempts);

}  // namespace weaver
