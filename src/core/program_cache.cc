#include "core/program_cache.h"

namespace weaver {

std::optional<ProgramResult> ProgramCache::Lookup(std::string_view program,
                                                  NodeId start,
                                                  const std::string& params) {
  MutexLock lk(mu_);
  auto it = entries_.find(Key{std::string(program), start, params});
  if (it == entries_.end()) {
    stats_.misses++;
    return std::nullopt;
  }
  stats_.hits++;
  return it->second.result;
}

void ProgramCache::Insert(std::string_view program, NodeId start,
                          const std::string& params,
                          const ProgramResult& result) {
  MutexLock lk(mu_);
  if (entries_.size() >= max_entries_) {
    // Simple safety valve: memoization is an optimization, so dumping the
    // cache wholesale is always correct.
    entries_.clear();
    by_node_.clear();
    stats_.entries_dropped += max_entries_;
  }
  Key key{std::string(program), start, params};
  Entry entry;
  entry.result = result;
  entry.dependencies.insert(start);
  for (const auto& [node, _] : result.returns) {
    entry.dependencies.insert(node);
  }
  auto [it, inserted] = entries_.insert_or_assign(std::move(key),
                                                  std::move(entry));
  const Key* stable_key = &it->first;  // node-based container: stable
  for (NodeId dep : it->second.dependencies) {
    by_node_[dep].insert(stable_key);
  }
  (void)inserted;
}

void ProgramCache::InvalidateNode(NodeId node) {
  MutexLock lk(mu_);
  auto nit = by_node_.find(node);
  if (nit == by_node_.end()) return;
  // Copy: erasing entries mutates the reverse index.
  std::vector<const Key*> stale(nit->second.begin(), nit->second.end());
  for (const Key* key : stale) {
    auto eit = entries_.find(*key);
    if (eit == entries_.end()) continue;
    for (NodeId dep : eit->second.dependencies) {
      auto dit = by_node_.find(dep);
      if (dit != by_node_.end()) {
        dit->second.erase(&eit->first);
        if (dit->second.empty()) by_node_.erase(dit);
      }
    }
    entries_.erase(eit);
    stats_.entries_dropped++;
  }
  stats_.invalidations++;
}

void ProgramCache::Clear() {
  MutexLock lk(mu_);
  entries_.clear();
  by_node_.clear();
}

std::size_t ProgramCache::Size() const {
  MutexLock lk(mu_);
  return entries_.size();
}

ProgramCache::Stats ProgramCache::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

}  // namespace weaver
