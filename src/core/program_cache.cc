#include "core/program_cache.h"

namespace weaver {

std::optional<ProgramResult> ProgramCache::Lookup(std::string_view program,
                                                  NodeId start,
                                                  const std::string& params) {
  MutexLock lk(mu_);
  auto it = entries_.find(Key{std::string(program), start, params});
  if (it == entries_.end()) {
    stats_.misses++;
    return std::nullopt;
  }
  stats_.hits++;
  return it->second.result;
}

void ProgramCache::Insert(std::string_view program, NodeId start,
                          const std::string& params,
                          const ProgramResult& result) {
  MutexLock lk(mu_);
  // Precision eviction: drop only the oldest entries until there is
  // room, instead of dumping the whole cache -- one hot workload vertex
  // no longer wipes every other memoized path. Records whose entry an
  // invalidation already removed are skipped (every live key has exactly
  // one record, so the loop always frees a slot).
  while (entries_.size() >= max_entries_ && !fifo_.empty()) {
    Key victim = std::move(fifo_.front());
    fifo_.pop_front();
    if (entries_.find(victim) == entries_.end()) continue;  // stale record
    EraseEntryLocked(victim);
    stats_.entries_dropped++;
  }
  Key key{std::string(program), start, params};
  Entry entry;
  entry.result = result;
  entry.dependencies.insert(start);
  for (const auto& [node, _] : result.returns) {
    entry.dependencies.insert(node);
  }
  auto [it, inserted] = entries_.insert_or_assign(key, std::move(entry));
  const Key* stable_key = &it->first;  // node-based container: stable
  for (NodeId dep : it->second.dependencies) {
    by_node_[dep].insert(stable_key);
  }
  if (inserted) fifo_.push_back(std::move(key));
  // Compaction guard: invalidation-heavy workloads leave stale records
  // accumulating in the order queue. Once they outnumber live entries by
  // a full capacity's worth, rebuild the queue from the live set.
  if (fifo_.size() > entries_.size() + max_entries_) {
    std::deque<Key> live;
    for (Key& k : fifo_) {
      if (entries_.find(k) != entries_.end()) live.push_back(std::move(k));
    }
    fifo_ = std::move(live);
  }
}

void ProgramCache::InvalidateNode(NodeId node) {
  MutexLock lk(mu_);
  auto nit = by_node_.find(node);
  if (nit == by_node_.end()) return;
  // Copy: erasing entries mutates the reverse index. The eviction
  // queue's records for these keys go stale and are skipped/compacted
  // later.
  std::vector<Key> stale;
  stale.reserve(nit->second.size());
  for (const Key* key : nit->second) stale.push_back(*key);
  for (const Key& key : stale) {
    if (entries_.find(key) == entries_.end()) continue;
    EraseEntryLocked(key);
    stats_.entries_dropped++;
  }
  stats_.invalidations++;
}

void ProgramCache::EraseEntryLocked(const Key& key) {
  auto eit = entries_.find(key);
  if (eit == entries_.end()) return;
  for (NodeId dep : eit->second.dependencies) {
    auto dit = by_node_.find(dep);
    if (dit != by_node_.end()) {
      dit->second.erase(&eit->first);
      if (dit->second.empty()) by_node_.erase(dit);
    }
  }
  entries_.erase(eit);
}

void ProgramCache::Clear() {
  MutexLock lk(mu_);
  entries_.clear();
  by_node_.clear();
  fifo_.clear();
}

std::size_t ProgramCache::Size() const {
  MutexLock lk(mu_);
  return entries_.size();
}

ProgramCache::Stats ProgramCache::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

}  // namespace weaver
