#include "core/node_program.h"

#include "programs/extended_programs.h"
#include "programs/standard_programs.h"

namespace weaver {

void ProgramRegistry::Register(std::unique_ptr<NodeProgram> program) {
  const std::string key(program->name());
  programs_[key] = std::move(program);
}

const NodeProgram* ProgramRegistry::Find(std::string_view name) const {
  auto it = programs_.find(std::string(name));
  return it == programs_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ProgramRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(programs_.size());
  for (const auto& [name, _] : programs_) out.push_back(name);
  return out;
}

std::shared_ptr<ProgramRegistry> ProgramRegistry::WithStandardPrograms() {
  auto registry = std::make_shared<ProgramRegistry>();
  programs::RegisterStandardPrograms(registry.get());
  programs::RegisterExtendedPrograms(registry.get());
  return registry;
}

}  // namespace weaver
